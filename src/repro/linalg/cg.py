"""Conjugate Gradient — the paper's Algorithm 1, format-parameterized.

The implementation follows the paper exactly:

* the residual is updated by the recurrence ``r ← r − α·A·p`` (line 5),
  *not* recomputed as ``b − A·x`` — the paper notes the recurrence can
  drift from the true residual and uses the **computed** residual as the
  convergence test;
* convergence is declared when ``‖r‖ ≤ ‖b‖ · rtol`` with the paper's
  strict ``rtol = 1e-5`` default;
* every arithmetic operation inside the iteration is rounded to the
  context's format.

The returned record carries both the computed and the true final
residuals so experiments can quantify the premature-convergence effect
the paper mentions (§IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..arith.context import FPContext
from ..telemetry.trace import SolverTrace, maybe_trace
from .norms import relative_backward_error

__all__ = ["CGResult", "conjugate_gradient"]


@dataclass
class CGResult:
    """Outcome of a CG run.

    Attributes
    ----------
    converged:
        True when the computed residual met the tolerance within budget.
    diverged:
        True when the iteration produced non-finite values or the
        residual exploded — the paper's "fails to converge" cases for
        Posit(32, 2) on large-norm matrices.
    iterations:
        Number of iterations performed (the paper's Fig. 6/7 y-axis).
    relative_residual:
        Final *computed* relative residual ‖r_i‖/‖b‖.
    true_relative_residual:
        Final *true* relative residual ‖b − A·x‖/‖b‖ in float64.
    """

    converged: bool
    diverged: bool
    iterations: int
    relative_residual: float
    true_relative_residual: float
    x: np.ndarray
    residual_history: list[float] = field(default_factory=list)
    #: per-iteration event record (populated when tracing is active
    #: or a :class:`~repro.telemetry.SolverTrace` was passed in)
    trace: SolverTrace | None = None

    @property
    def failed(self) -> bool:
        """Not converged (either diverged or budget exhausted)."""
        return not self.converged


def conjugate_gradient(ctx: FPContext, A: np.ndarray, b: np.ndarray,
                       rtol: float = 1e-5, max_iterations: int = 5000,
                       divergence_factor: float = 1e8,
                       record_history: bool = False,
                       jacobi: bool = False,
                       trace: SolverTrace | None = None) -> CGResult:
    """Solve SPD ``Ax = b`` with per-op-rounded CG (paper Algorithm 1).

    Parameters
    ----------
    ctx:
        Arithmetic context; `A` and `b` are quantized into it on entry
        (the paper casts from extended precision into the test format).
    rtol:
        Relative-backward-error tolerance on the computed residual
        (paper: 1e-5, "fairly strict ... to exercise these numerical
        formats to their limits").
    max_iterations:
        Iteration budget; exceeding it reports ``converged=False``.
    divergence_factor:
        Declares divergence when ‖r‖ grows beyond this multiple of ‖b‖.
    trace:
        Optional :class:`~repro.telemetry.SolverTrace` to record
        per-iteration events (residual, iterate peaks) into; when None
        one is created automatically if an ambient tracer is active
        (``repro.telemetry.tracing`` / ``trace_session``), otherwise
        nothing is recorded.
    jacobi:
        Use Jacobi (diagonal) preconditioning, ``M = diag(A)``.  Not
        part of the paper's protocol — provided as the *dynamic*
        counterpart of its static rescaling (convergence is still
        tested on the unpreconditioned residual).  Preconditioner
        applications are rounded like every other operation.

    Notes
    -----
    *A* may be a dense array or an
    :class:`~repro.arith.sparse.ELLMatrix` (the padded-row sparse
    layout), which makes full-scale suite runs tractable.
    """
    from ..arith.sparse import CSRMatrix, ELLMatrix
    trace = maybe_trace("cg", ctx.fmt.name, trace)
    A = ctx.asarray(A)
    b = ctx.asarray(np.asarray(b, dtype=np.float64))
    n = b.shape[0]

    minv = None
    if jacobi:
        diag = (A.diagonal() if isinstance(A, (ELLMatrix, CSRMatrix))
                else np.diag(np.asarray(A)))
        if np.any(diag <= 0) or not np.all(np.isfinite(diag)):
            raise ValueError("Jacobi preconditioning requires a positive "
                             "finite diagonal")
        minv = ctx.div(1.0, diag)

    x = np.zeros(n, dtype=np.float64)  # line 1: x0 = 0
    r = b.copy()                       # r0 = b
    z = ctx.mul(minv, r) if jacobi else r
    p = np.array(z, dtype=np.float64, copy=True)  # p0 = z0

    norm_b = float(np.linalg.norm(b))
    if norm_b == 0.0:
        return CGResult(True, False, 0, 0.0, 0.0, x, trace=trace)
    threshold = rtol * norm_b
    blowup = divergence_factor * norm_b

    rz = ctx.dot(r, z)  # ⟨r, z⟩ (= ⟨r, r⟩ unpreconditioned)
    rr = rz if not jacobi else ctx.dot(r, r)
    history: list[float] = []
    iterations = 0

    for iterations in range(1, max_iterations + 1):
        Ap = ctx.matvec(A, p)
        pAp = ctx.dot(p, Ap)
        if not np.isfinite(pAp) or pAp == 0.0:
            return _finish(A, b, x, iterations, rr, norm_b, history, trace,
                           diverged=True)
        alpha = ctx.div(rz, pAp)                     # line 3
        x = ctx.axpy(alpha, p, x)                    # line 4
        r = ctx.axpy(-alpha, Ap, r)                  # line 5 (recurrence)
        z = ctx.mul(minv, r) if jacobi else r
        rz_new = ctx.dot(r, z)
        rr_new = rz_new if not jacobi else ctx.dot(r, r)
        if not np.isfinite(rr_new) or not np.isfinite(rz_new):
            return _finish(A, b, x, iterations, rr_new, norm_b, history, trace,
                           diverged=True)

        res_norm = float(np.sqrt(max(rr_new, 0.0)))
        if record_history:
            history.append(res_norm / norm_b)
        if trace is not None:
            trace.iteration(iterations, residual=res_norm / norm_b,
                            vectors=(x, r, p))
        if res_norm <= threshold:
            return _finish(A, b, x, iterations, rr_new, norm_b, history, trace,
                           converged=True)
        if res_norm >= blowup:
            return _finish(A, b, x, iterations, rr_new, norm_b, history, trace,
                           diverged=True)

        if rz == 0.0:
            return _finish(A, b, x, iterations, rr_new, norm_b, history, trace,
                           diverged=True)
        beta = ctx.div(rz_new, rz)                   # line 6
        p = ctx.axpy(beta, p, z)                     # line 7
        rz = rz_new
        rr = rr_new

    return _finish(A, b, x, iterations, rr, norm_b, history, trace)


def _finish(A, b, x, iterations, rr, norm_b, history, trace, *,
            converged: bool = False, diverged: bool = False) -> CGResult:
    computed = (float(np.sqrt(rr)) / norm_b
                if np.isfinite(rr) and rr >= 0 else np.inf)
    true_rel = relative_backward_error(A, x, b)
    if trace is not None:
        trace.event("finish", iter=iterations,
                    outcome=("converged" if converged else
                             "breakdown" if diverged else "budget"),
                    residual=computed)
    return CGResult(converged=converged, diverged=diverged,
                    iterations=iterations, relative_residual=computed,
                    true_relative_residual=true_rel, x=x,
                    residual_history=history, trace=trace)
