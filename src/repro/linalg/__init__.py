"""Format-parameterized linear solvers: CG, BiCG(STAB), Cholesky, LU,
GMRES and mixed-precision iterative refinement."""

from .bicg import BiCGResult, bicg, bicgstab, iterate_dynamic_range
from .cg import CGResult, conjugate_gradient
from .cholesky import CholeskyResult, cholesky_factor, cholesky_solve
from .gmres import GMRESResult, gmres
from .ir import IRResult, iterative_refinement, lower_precision_storage
from .lu import LUFactors, lu_factor, lu_solve
from .qr import QRFactors, qr_factor, qr_solve
from .norms import (condition_number_2, factorization_backward_error,
                    fro_norm, inf_norm, normwise_backward_error,
                    relative_backward_error, two_norm)

__all__ = [
    "CGResult", "conjugate_gradient",
    "BiCGResult", "bicg", "bicgstab", "iterate_dynamic_range",
    "CholeskyResult", "cholesky_factor", "cholesky_solve",
    "GMRESResult", "gmres",
    "IRResult", "iterative_refinement", "lower_precision_storage",
    "LUFactors", "lu_factor", "lu_solve",
    "QRFactors", "qr_factor", "qr_solve",
    "two_norm", "inf_norm", "fro_norm", "condition_number_2",
    "relative_backward_error", "normwise_backward_error",
    "factorization_backward_error",
]
