"""LU factorization under emulated arithmetic.

The paper uses Cholesky instead of LU for its direct-solve experiments
because Cholesky needs no row pivoting on SPD matrices (§III), but it
discusses LU throughout (Gustafson's original Gaussian-elimination
experiment, the Haidar/Higham mixed-precision line of work, and the
§VI observation that LU factors stay scaled like the original matrix).
This module provides the rounded LU baseline so those comparisons can
be made inside the same harness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arith.context import FPContext
from ..arith.triangular import solve_lower, solve_upper
from ..errors import FactorizationError

__all__ = ["lu_factor", "lu_solve", "LUFactors"]


@dataclass
class LUFactors:
    """Unit-lower L, upper U and the row permutation with ``PA ≈ LU``."""

    L: np.ndarray
    U: np.ndarray
    perm: np.ndarray  # row permutation indices: A[perm] ≈ L @ U

    def apply_permutation(self, b: np.ndarray) -> np.ndarray:
        return np.asarray(b, dtype=np.float64)[self.perm]


def lu_factor(ctx: FPContext, A: np.ndarray,
              pivot: bool = True) -> LUFactors:
    """Rounded LU with (default) partial pivoting.

    Pivot selection compares magnitudes only — no arithmetic, hence no
    rounding.  A zero/non-finite pivot raises
    :class:`FactorizationError`.
    """
    W = np.array(ctx.asarray(A), dtype=np.float64)
    n = W.shape[0]
    if W.shape != (n, n):
        raise ValueError(f"A must be square, got {W.shape}")
    perm = np.arange(n)
    L = np.eye(n, dtype=np.float64)

    for k in range(n):
        if pivot:
            rel = int(np.argmax(np.abs(W[k:, k])))
            if rel != 0:
                piv = k + rel
                W[[k, piv], :] = W[[piv, k], :]
                L[[k, piv], :k] = L[[piv, k], :k]
                perm[[k, piv]] = perm[[piv, k]]
        d = W[k, k]
        if not np.isfinite(d) or d == 0.0:
            raise FactorizationError(
                f"zero or non-finite pivot {d!r} at column {k}",
                pivot_index=k)
        if k + 1 < n:
            mult = ctx.div(W[k + 1:, k], d)
            L[k + 1:, k] = mult
            W[k + 1:, k + 1:] = ctx.sub(
                W[k + 1:, k + 1:], ctx.outer(mult, W[k, k + 1:]))
            W[k + 1:, k] = 0.0
    return LUFactors(L=L, U=np.triu(W), perm=perm)


def lu_solve(ctx: FPContext, factors: LUFactors,
             b: np.ndarray) -> np.ndarray:
    """Solve ``Ax = b`` given rounded LU factors."""
    pb = ctx.asarray(factors.apply_permutation(b))
    y = solve_lower(ctx, factors.L, pb)
    return solve_upper(ctx, factors.U, y)
