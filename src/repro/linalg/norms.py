"""Norms and backward-error metrics used throughout the evaluation.

All metrics are computed in float64 — they are *measurements* of the
emulated runs, not part of the emulated arithmetic.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "two_norm",
    "inf_norm",
    "fro_norm",
    "condition_number_2",
    "relative_backward_error",
    "normwise_backward_error",
    "factorization_backward_error",
]


def two_norm(A: np.ndarray) -> float:
    """Spectral norm ‖A‖₂ (largest singular value).

    For the symmetric matrices in this study this equals the largest
    absolute eigenvalue; we use the symmetric eigensolver when the input
    is symmetric because it is both faster and more accurate than a full
    SVD.
    """
    A = np.asarray(A, dtype=np.float64)
    if A.ndim == 1:
        return float(np.linalg.norm(A))
    if np.array_equal(A, A.T):
        w = np.linalg.eigvalsh(A)
        return float(np.max(np.abs(w)))
    return float(np.linalg.norm(A, 2))


def inf_norm(A: np.ndarray) -> float:
    """‖A‖∞ — max absolute row sum (max |x| for vectors)."""
    A = np.asarray(A, dtype=np.float64)
    if A.ndim == 1:
        return float(np.max(np.abs(A))) if A.size else 0.0
    return float(np.max(np.sum(np.abs(A), axis=1)))


def fro_norm(A: np.ndarray) -> float:
    """Frobenius norm."""
    return float(np.linalg.norm(np.asarray(A, dtype=np.float64)))


def condition_number_2(A: np.ndarray) -> float:
    """2-norm condition number κ₂(A); inf for singular matrices."""
    A = np.asarray(A, dtype=np.float64)
    if np.array_equal(A, A.T):
        w = np.abs(np.linalg.eigvalsh(A))
        small = float(np.min(w))
        return np.inf if small == 0.0 else float(np.max(w)) / small
    s = np.linalg.svd(A, compute_uv=False)
    return np.inf if s[-1] == 0.0 else float(s[0] / s[-1])


def _apply64(A, x: np.ndarray) -> np.ndarray:
    """Exact float64 ``A @ x`` for dense arrays or ELL operators."""
    if hasattr(A, "matvec64"):
        return A.matvec64(x)
    return np.asarray(A, dtype=np.float64) @ x


def relative_backward_error(A, x: np.ndarray,
                            b: np.ndarray) -> float:
    """The paper's error metric: ``‖b − Ax‖₂ / ‖b‖₂``.

    *A* may be a dense array or any operator with a ``matvec64``
    method (e.g. :class:`repro.arith.sparse.ELLMatrix`).  Returns inf
    when the solution contains non-finite entries.
    """
    x = np.asarray(x, dtype=np.float64)
    if not np.all(np.isfinite(x)):
        return np.inf
    r = np.asarray(b, dtype=np.float64) - _apply64(A, x)
    nb = float(np.linalg.norm(b))
    if nb == 0.0:
        return float(np.linalg.norm(r))
    return float(np.linalg.norm(r)) / nb


def normwise_backward_error(A: np.ndarray, x: np.ndarray,
                            b: np.ndarray) -> float:
    """Rigal–Gaches normwise backward error ``‖r‖ / (‖A‖_F‖x‖ + ‖b‖)``.

    Used as the "accurate to Float64 precision" convergence test in the
    mixed-precision iterative-refinement experiments.
    """
    x = np.asarray(x, dtype=np.float64)
    if not np.all(np.isfinite(x)):
        return np.inf
    A = np.asarray(A, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    r = b - A @ x
    denom = fro_norm(A) * float(np.linalg.norm(x)) + float(np.linalg.norm(b))
    if denom == 0.0:
        return float(np.linalg.norm(r))
    return float(np.linalg.norm(r)) / denom


def factorization_backward_error(A: np.ndarray, R: np.ndarray,
                                 denominator: str = "A") -> float:
    """Cholesky factor quality ``‖RᵀR − A‖_F / ‖·‖_F`` (paper Fig. 10b).

    The paper's caption normalizes by ‖R‖_F; the conventional metric
    normalizes by ‖A‖_F.  *denominator* selects ``"A"`` (default) or
    ``"R"``; EXPERIMENTS.md reports the conventional one and notes the
    discrepancy.
    """
    A = np.asarray(A, dtype=np.float64)
    R = np.asarray(R, dtype=np.float64)
    if not np.all(np.isfinite(R)):
        return np.inf
    num = fro_norm(R.T @ R - A)
    den = fro_norm(A) if denominator == "A" else fro_norm(R)
    return np.inf if den == 0.0 else num / den
