"""BiCG and BiCGSTAB under emulated arithmetic.

The paper hypothesizes (§VI) that "certain procedures such as Bi-CG
which have been observed to produce even larger iterates than
traditional CG may limit the potential for re-scaling as a means to
stabilize Posit since the working dynamic range is very high", and
lists Bi-CG as future work.  These solvers let the ``ext-bicg``
experiment test that hypothesis by tracking the dynamic range of the
iterates alongside convergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..arith.context import FPContext
from ..telemetry.trace import SolverTrace, maybe_trace
from .norms import relative_backward_error

__all__ = ["BiCGResult", "bicg", "bicgstab", "iterate_dynamic_range"]


@dataclass
class BiCGResult:
    """Outcome of a BiCG/BiCGSTAB run, with iterate-magnitude telemetry.

    The per-iteration record lives in :attr:`trace` (a
    :class:`~repro.telemetry.SolverTrace`, recorded unconditionally for
    these solvers because the §VI hypothesis is *about* the iterate
    telemetry); :attr:`iterate_peaks` and :attr:`peak_dynamic_range`
    are views over it.
    """

    converged: bool
    diverged: bool
    iterations: int
    relative_residual: float
    true_relative_residual: float
    x: np.ndarray
    trace: SolverTrace = field(default_factory=lambda: SolverTrace("bicg"))

    @property
    def iterate_peaks(self) -> list[float]:
        """Per-iteration max |entry| over all work vectors — the
        "dynamic range of the iterates" the paper's hypothesis is
        about."""
        return self.trace.peaks

    @property
    def peak_dynamic_range(self) -> float:
        """log10(max peak / min peak) across the whole run."""
        return self.trace.peak_dynamic_range


def bicg(ctx: FPContext, A: np.ndarray, b: np.ndarray, rtol: float = 1e-5,
         max_iterations: int = 5000,
         trace: SolverTrace | None = None) -> BiCGResult:
    """Classic (unstabilized) BiCG with per-op-rounded arithmetic.

    For symmetric A this is mathematically CG run with an extra shadow
    sequence; its iterates are the ones the paper warns can grow large.
    """
    trace = maybe_trace("bicg", ctx.fmt.name, trace, always=True)
    A = ctx.asarray(A)
    At = np.ascontiguousarray(A.T)
    b = ctx.asarray(np.asarray(b, dtype=np.float64))
    n = b.shape[0]
    x = np.zeros(n)
    r = b.copy()
    rt = r.copy()
    p = r.copy()
    pt = rt.copy()
    norm_b = float(np.linalg.norm(b)) or 1.0
    rho = ctx.dot(rt, r)
    res = float(np.linalg.norm(r))

    for it in range(1, max_iterations + 1):
        Ap = ctx.matvec(A, p)
        denom = ctx.dot(pt, Ap)
        if denom == 0.0 or not np.isfinite(denom) or rho == 0.0:
            return _bicg_finish(A, b, x, it, np.inf, norm_b, trace,
                                diverged=True)
        alpha = ctx.div(rho, denom)
        x = ctx.add(x, ctx.mul(alpha, p))
        r = ctx.sub(r, ctx.mul(alpha, Ap))
        Atpt = ctx.matvec(At, pt)
        rt = ctx.sub(rt, ctx.mul(alpha, Atpt))

        res = float(np.linalg.norm(r))
        trace.iteration(it, residual=res / norm_b, vectors=(x, r, p, pt))
        if not np.isfinite(res):
            return _bicg_finish(A, b, x, it, np.inf, norm_b, trace,
                                diverged=True)
        if res <= rtol * norm_b:
            return _bicg_finish(A, b, x, it, res, norm_b, trace,
                                converged=True)
        rho_new = ctx.dot(rt, r)
        if rho_new == 0.0 or not np.isfinite(rho_new):
            return _bicg_finish(A, b, x, it, res, norm_b, trace,
                                diverged=True)
        beta = ctx.div(rho_new, rho)
        p = ctx.add(r, ctx.mul(beta, p))
        pt = ctx.add(rt, ctx.mul(beta, pt))
        rho = rho_new
    return _bicg_finish(A, b, x, max_iterations, res, norm_b, trace)


def bicgstab(ctx: FPContext, A: np.ndarray, b: np.ndarray,
             rtol: float = 1e-5, max_iterations: int = 5000,
             trace: SolverTrace | None = None) -> BiCGResult:
    """BiCGSTAB with per-op-rounded arithmetic."""
    trace = maybe_trace("bicgstab", ctx.fmt.name, trace, always=True)
    A = ctx.asarray(A)
    b = ctx.asarray(np.asarray(b, dtype=np.float64))
    n = b.shape[0]
    x = np.zeros(n)
    r = b.copy()
    r0 = r.copy()
    p = r.copy()
    norm_b = float(np.linalg.norm(b)) or 1.0
    rho = ctx.dot(r0, r)
    res = float(np.linalg.norm(r))

    for it in range(1, max_iterations + 1):
        Ap = ctx.matvec(A, p)
        denom = ctx.dot(r0, Ap)
        if denom == 0.0 or not np.isfinite(denom):
            return _bicg_finish(A, b, x, it, res, norm_b, trace,
                                diverged=True)
        alpha = ctx.div(rho, denom)
        s = ctx.sub(r, ctx.mul(alpha, Ap))
        As = ctx.matvec(A, s)
        ss = ctx.dot(As, As)
        omega = ctx.div(ctx.dot(As, s), ss) if ss != 0.0 else 0.0
        x = ctx.add(x, ctx.add(ctx.mul(alpha, p), ctx.mul(omega, s)))
        r = ctx.sub(s, ctx.mul(omega, As))

        res = float(np.linalg.norm(r))
        trace.iteration(it, residual=res / norm_b, vectors=(x, r, p, s))
        if not np.isfinite(res):
            return _bicg_finish(A, b, x, it, np.inf, norm_b, trace,
                                diverged=True)
        if res <= rtol * norm_b:
            return _bicg_finish(A, b, x, it, res, norm_b, trace,
                                converged=True)
        rho_new = ctx.dot(r0, r)
        if rho == 0.0 or omega == 0.0 or not np.isfinite(rho_new):
            return _bicg_finish(A, b, x, it, res, norm_b, trace,
                                diverged=True)
        beta = ctx.mul(ctx.div(rho_new, rho), ctx.div(alpha, omega))
        p = ctx.add(r, ctx.mul(beta, ctx.sub(p, ctx.mul(omega, Ap))))
        rho = rho_new
    return _bicg_finish(A, b, x, max_iterations, res, norm_b, trace)


def _bicg_finish(A, b, x, iterations, res, norm_b, trace, *,
                 converged=False, diverged=False) -> BiCGResult:
    rel = res / norm_b if np.isfinite(res) else np.inf
    trace.event("finish", iter=iterations,
                outcome=("converged" if converged else
                         "breakdown" if diverged else "budget"),
                residual=rel)
    return BiCGResult(converged=converged, diverged=diverged,
                      iterations=iterations, relative_residual=rel,
                      true_relative_residual=relative_backward_error(
                          A, x, b),
                      x=x, trace=trace)


def iterate_dynamic_range(result: BiCGResult) -> float:
    """Convenience accessor for the paper's §VI quantity."""
    return result.peak_dynamic_range
