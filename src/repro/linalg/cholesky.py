"""Cholesky factorization and direct solve — the paper's Algorithm 2.

``cholesky_factor`` computes the upper-triangular R with ``A = RᵀR``
using the right-looking (outer-product) variant.  Column updates are
vectorized but every arithmetic operation is individually rounded to
the context's format, matching the paper's no-deferred-rounding rule.

Breakdown semantics match the paper's Table II: a non-positive or
non-finite pivot raises :class:`FactorizationError` ("arithmetic error
encountered during factorization").  With IEEE formats, overflow during
the trailing update produces ±inf/NaN which surfaces as a broken pivot;
with posit formats, saturation at ±maxpos silently poisons the factor
instead — both behaviours are the genuine format semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arith.context import FPContext
from ..arith.triangular import solve_lower, solve_upper
from ..errors import FactorizationError
from ..telemetry.trace import SolverTrace, maybe_trace
from .norms import relative_backward_error

__all__ = ["cholesky_factor", "cholesky_solve", "CholeskyResult"]


def cholesky_factor(ctx: FPContext, A: np.ndarray,
                    trace: SolverTrace | None = None) -> np.ndarray:
    """Rounded Cholesky: returns upper-triangular R with ``A ≈ RᵀR``.

    *A* is quantized into the context's format on entry (the storage
    rounding the paper applies when casting the matrix down).  With an
    active tracer (or an explicit *trace*), a summary ``factorize``
    event — or a ``breakdown`` event naming the broken pivot column —
    is recorded; per-pivot events are deliberately not emitted (they
    would dominate the trace at full matrix sizes).
    """
    trace = maybe_trace("cholesky", ctx.fmt.name, trace)
    W = np.array(ctx.asarray(A), dtype=np.float64)  # working copy
    n = W.shape[0]
    if W.shape != (n, n):
        raise ValueError(f"A must be square, got {W.shape}")
    R = np.zeros_like(W)

    for k in range(n):
        d = W[k, k]
        if not np.isfinite(d) or d <= 0.0:
            if trace is not None:
                trace.event("breakdown", stage="pivot", column=k,
                            pivot=float(d))
            raise FactorizationError(
                f"non-positive or non-finite pivot {d!r} at column {k}",
                pivot_index=k)
        rkk = float(ctx.inject("pivot", float(ctx.sqrt(d))))
        if not np.isfinite(rkk) or rkk == 0.0:
            if trace is not None:
                trace.event("breakdown", stage="pivot-sqrt", column=k,
                            pivot=rkk)
            raise FactorizationError(
                f"pivot square root degenerated to {rkk!r} at column {k}",
                pivot_index=k)
        R[k, k] = rkk
        if k + 1 < n:
            row = ctx.div(W[k, k + 1:], rkk)
            R[k, k + 1:] = row
            W[k + 1:, k + 1:] = ctx.sub(W[k + 1:, k + 1:],
                                        ctx.outer(row, row))
    if trace is not None and n:
        diag = np.diag(R)
        trace.event("factorize", n=n, min_pivot=float(np.min(diag)),
                    max_pivot=float(np.max(diag)))
    return R


@dataclass
class CholeskyResult:
    """Outcome of a direct Cholesky solve."""

    x: np.ndarray
    R: np.ndarray
    relative_backward_error: float


def cholesky_solve(ctx: FPContext, A: np.ndarray, b: np.ndarray,
                   R: np.ndarray | None = None) -> CholeskyResult:
    """One pass of the paper's Algorithm 2 (single iteration, i = 1).

    Factorizes (unless *R* is supplied), solves ``Rᵀy = b`` then
    ``Rx = y`` with rounded substitution, and reports the paper's
    metric ``‖b − Ax‖₂/‖b‖₂`` measured in float64.
    """
    A64 = np.asarray(A, dtype=np.float64)
    b_fmt = ctx.asarray(np.asarray(b, dtype=np.float64))
    if R is None:
        R = cholesky_factor(ctx, A64)
    y = solve_lower(ctx, None, b_fmt, transposed_upper=R)
    x = solve_upper(ctx, R, y)
    err = relative_backward_error(A64, x, np.asarray(b, dtype=np.float64))
    return CholeskyResult(x=x, R=R, relative_backward_error=err)
