"""Mixed-precision iterative refinement — the paper's §IV-E / §V-D.

The O(n³) Cholesky factorization runs in a **low-precision** format
(Float16, Posit(16,1) or Posit(16,2) in the paper); the factors are then
promoted to Float64 and classic refinement iterations

    rᵢ = b − A·xᵢ₋₁   (Float64)
    solve Rᵀy = rᵢ, R·d = y   (Float64, using the low-precision factors)
    xᵢ = xᵢ₋₁ + d

run until the solution is "accurate to Float64 precision".  Following
the paper, everything after the factorization happens in Float64 to
isolate the effect of the factorization precision on the convergence
rate.

Outcome encoding matches Table II/III:

* ``failed`` (paper '-'): the low-precision factorization broke down, or
  refinement diverged because the factor was too inaccurate;
* ``iterations`` with ``converged=False`` (paper '1000+'): the
  factorization succeeded but refinement did not converge in budget;
* otherwise the refinement-step count the tables report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..arith.context import FPContext
from ..errors import FactorizationError
from ..formats.base import NumberFormat
from ..formats.registry import get_format
from ..telemetry.trace import maybe_trace
from .cholesky import cholesky_factor
from .norms import factorization_backward_error, normwise_backward_error

__all__ = ["IRResult", "iterative_refinement", "lower_precision_storage"]

#: float64 unit roundoff
_U64 = float(np.finfo(np.float64).eps) / 2.0


def lower_precision_storage(A: np.ndarray, fmt: NumberFormat | str,
                            clamp_overflow: bool = True) -> np.ndarray:
    """Cast a matrix into a low-precision format for the factorization.

    Per the paper: "If an entry in the matrix is larger than the maximum
    representable value of Float16 or Posit16 then we round down to this
    value" — i.e. IEEE overflow during *storage* is clamped to ±max
    (posit saturates on its own).  Underflow to zero is the format's own
    behaviour and is kept.
    """
    fmt = get_format(fmt)
    A64 = np.asarray(A, dtype=np.float64)
    low = np.asarray(fmt.round(A64))
    if clamp_overflow:
        over = np.isinf(low)
        if np.any(over):
            low = np.where(over, np.copysign(fmt.max_value, A64), low)
    return low


@dataclass
class IRResult:
    """Outcome of a mixed-precision IR run."""

    converged: bool
    failed: bool                 # factorization broke down / diverged ('-')
    iterations: int
    final_backward_error: float  # normwise, float64 measurement
    factorization_error: float   # ‖RᵀR − A_low‖_F / ‖A_low‖_F, inf if failed
    failure_reason: str = ""
    history: list[float] = field(default_factory=list)
    x: np.ndarray | None = None  # the refined solution (None on failure)

    def table_entry(self, budget: int) -> str:
        """Format the outcome exactly like the paper's Tables II/III."""
        if self.failed:
            return "-"
        if not self.converged:
            return f"{budget}+"
        return str(self.iterations)


def iterative_refinement(A: np.ndarray, b: np.ndarray,
                         factor_format: NumberFormat | str,
                         max_iterations: int = 1000,
                         tolerance: float = 4.0 * _U64,
                         sum_order: str = "pairwise",
                         divergence_patience: int = 25,
                         record_history: bool = False,
                         scaling=None,
                         low_ctx: FPContext | None = None) -> IRResult:
    """Run mixed-precision iterative refinement on SPD ``Ax = b``.

    Parameters
    ----------
    A, b:
        The system, in float64 working precision.
    factor_format:
        The low-precision format for the Cholesky factorization stage.
    tolerance:
        Convergence threshold on the Rigal–Gaches normwise backward
        error — "accurate to Float64 precision" (a few units of u₆₄).
    divergence_patience:
        Refinement is abandoned as *failed* when the backward error has
        not improved for this many consecutive steps while still above
        sqrt(u₆₄) — the paper's "too much error in the factorization to
        reliably derive an accurate solution".
    scaling:
        Optional :class:`repro.scaling.higham.HighamScaledSystem` (or
        any object with ``A_scaled`` and ``correction_solve(R, r)``).
        When provided, the *scaled* matrix is factorized in low
        precision and corrections are mapped back through the scaling
        — the paper's Table III configuration.
    low_ctx:
        Optional pre-built context for the factorization stage — the
        hook for fault-injection studies (attach an injector to the
        context and the low-precision factorization runs under it).
        Must carry the same format as *factor_format*.
    """
    A64 = np.asarray(A, dtype=np.float64)
    b64 = np.asarray(b, dtype=np.float64)
    fmt = get_format(factor_format)
    trace = maybe_trace("ir", fmt.name)
    if low_ctx is None:
        low_ctx = FPContext(fmt, sum_order=sum_order)
    elif low_ctx.fmt != fmt:
        raise ValueError(f"low_ctx format {low_ctx.fmt.name!r} does not "
                         f"match factor_format {fmt.name!r}")

    factor_target = (np.asarray(scaling.A_scaled, dtype=np.float64)
                     if scaling is not None else A64)
    A_low = lower_precision_storage(factor_target, fmt)
    if not np.all(np.isfinite(A_low)):
        if trace is not None:
            trace.event("breakdown", stage="storage",
                        reason="matrix not storable in format")
        return IRResult(False, True, 0, np.inf, np.inf,
                        failure_reason="matrix not storable in format")

    try:
        R = cholesky_factor(low_ctx, A_low)
    except FactorizationError as exc:
        if trace is not None:
            trace.event("breakdown", stage="factorization",
                        reason=str(exc))
        return IRResult(False, True, 0, np.inf, np.inf,
                        failure_reason=f"factorization: {exc}")
    if not np.all(np.isfinite(R)):
        if trace is not None:
            trace.event("breakdown", stage="factorization",
                        reason="non-finite factor")
        return IRResult(False, True, 0, np.inf, np.inf,
                        failure_reason="non-finite factor")

    fact_err = factorization_backward_error(A_low, R)

    # Refinement stage: everything in float64 from here (paper §V-D2).
    diag = np.diag(R)
    if np.any(diag <= 0):
        return IRResult(False, True, 0, np.inf, fact_err,
                        failure_reason="non-positive factor diagonal")

    import scipy.linalg as sla
    x = np.zeros_like(b64)
    history: list[float] = []
    best = np.inf
    stall = 0
    for i in range(1, max_iterations + 1):
        r = b64 - A64 @ x
        if scaling is not None:
            d = scaling.correction_solve(R, r)
        else:
            y = sla.solve_triangular(R, r, trans="T", lower=False)
            d = sla.solve_triangular(R, y, trans="N", lower=False)
        x = x + d
        err = normwise_backward_error(A64, x, b64)
        if record_history:
            history.append(err)
        if trace is not None:
            trace.iteration(i, residual=err)
        if not np.isfinite(err):
            if trace is not None:
                trace.event("breakdown", stage="refinement",
                            reason="diverged (non-finite)")
            return IRResult(False, True, i, np.inf, fact_err,
                            failure_reason="refinement diverged (non-finite)",
                            history=history)
        if err <= tolerance:
            if trace is not None:
                trace.event("finish", iter=i, outcome="converged",
                            residual=err)
            return IRResult(True, False, i, err, fact_err,
                            history=history, x=x)
        if err < best:
            best = err
            stall = 0
        else:
            stall += 1
            if stall >= divergence_patience and best > np.sqrt(_U64):
                if trace is not None:
                    trace.event("breakdown", stage="refinement",
                                reason="stagnated far from solution")
                return IRResult(False, True, i, err, fact_err,
                                failure_reason="refinement stagnated far "
                                               "from solution",
                                history=history)

    if trace is not None:
        trace.event("finish", iter=max_iterations, outcome="budget",
                    residual=best)
    return IRResult(False, False, max_iterations, best, fact_err,
                    failure_reason="iteration budget exhausted",
                    history=history, x=x)
