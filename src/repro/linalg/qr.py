"""Householder QR under emulated arithmetic.

The paper's §VI analysis leans on factor-norm identities to argue that
direct methods keep their working values near the original matrix's
scale: "‖R‖ = ‖A‖ for QR factorization and ‖R‖ = ‖Rᵀ‖ = √‖A‖ for
Cholesky Factorization".  This module provides the rounded QR needed to
*measure* that claim (the ``ext-factor-norms`` study) and rounds out
the direct-solver family (least-squares solves, a pivot-free
alternative to LU for non-symmetric systems).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arith.context import FPContext
from ..arith.triangular import solve_upper
from ..errors import FactorizationError

__all__ = ["qr_factor", "qr_solve", "QRFactors"]


@dataclass
class QRFactors:
    """Householder factors: ``A ≈ Q·R`` with Q orthonormal (m×n case:
    thin factors)."""

    Q: np.ndarray
    R: np.ndarray


def qr_factor(ctx: FPContext, A: np.ndarray) -> QRFactors:
    """Rounded Householder QR of an m×n matrix (m ≥ n).

    Every arithmetic operation — reflector construction, norm,
    application — is individually rounded to the context format.  Q is
    accumulated explicitly (the experiments need it for orthogonality
    measurements; for m up to the suite's sizes this is fine).
    """
    W = np.array(ctx.asarray(A), dtype=np.float64)
    m, n = W.shape
    if m < n:
        raise ValueError(f"qr_factor expects m >= n, got {W.shape}")
    Q = np.eye(m, dtype=np.float64)

    for k in range(n):
        col = W[k:, k]
        sigma = ctx.norm2(col)
        if not np.isfinite(sigma):
            raise FactorizationError(
                f"non-finite column norm at step {k}", stage="qr",
                pivot_index=k)
        if sigma == 0.0:
            continue  # column already zero below the diagonal
        # v = col + sign(col_0)·σ·e₁  (stable reflector choice)
        alpha = sigma if col[0] >= 0 else -sigma
        v = np.array(col, dtype=np.float64, copy=True)
        v[0] = ctx.add(v[0], alpha)
        vtv = ctx.dot(v, v)
        if vtv == 0.0 or not np.isfinite(vtv):
            continue

        # apply H = I − 2·v·vᵀ/vᵀv to the trailing block of W
        tail = W[k:, k:]
        coeffs = ctx.div(ctx.mul(2.0, ctx.matvec(tail.T.copy(), v)), vtv)
        W[k:, k:] = ctx.sub(tail, ctx.outer(v, coeffs))
        # and to Q (accumulating Q = H_1 H_2 ... applied to identity)
        qtail = Q[:, k:]
        qcoeffs = ctx.div(ctx.mul(2.0, ctx.matvec(qtail, v)), vtv)
        Q[:, k:] = ctx.sub(qtail, ctx.outer(qcoeffs, v))

        # enforce the exact zeros the reflector produces analytically
        W[k + 1:, k] = 0.0

    return QRFactors(Q=Q[:, :n], R=np.triu(W[:n, :]))


def qr_solve(ctx: FPContext, factors: QRFactors,
             b: np.ndarray) -> np.ndarray:
    """Solve ``Ax = b`` (or least squares for tall A) from QR factors.

    ``x = R⁻¹ (Qᵀ b)`` with the projection and the substitution both
    rounded.
    """
    b = ctx.asarray(np.asarray(b, dtype=np.float64))
    y = ctx.matvec(factors.Q.T.copy(), b)
    return solve_upper(ctx, factors.R, y)
