"""Segmented CSR reduction: the compact O(nnz) rounded pairwise fold.

The padded CSR matvec (:meth:`repro.arith.sparse.CSRMatrix.slot_map`)
scatters the ``nnz + 1`` quantized products into the full ``(n, k)``
ELL shape before folding, so one long row inflates every row to its
width: an arrow matrix with a single dense row pays O(n²) per
application.  This module folds the compact product array directly,
reproducing the ELL tree **bit for bit** without ever materializing the
padded view.

Why skipping the padding preserves every bit
--------------------------------------------
The ELL fold (:func:`repro.arith.summation._fold_pairwise`) pairs slot
``j`` with slot ``j + m`` (``m = k // 2``) at every level and copies an
odd leftover slot un-rounded.  Stored entries occupy a prefix of each
padded row; padding slots all hold the one shared padding product
``p = rnd(0.0 * x[0])``, which is ``+0.0``, ``-0.0`` or NaN.  Three
facts make the compact fold exact:

1. **Prefixes stay prefixes.**  If a row holds ``c`` live values among
   ``k`` slots, the fold writes live results to slots
   ``0 .. min(c, m) - 1`` and the (odd-``k``) leftover slot ``m`` is
   live only when ``c == k`` — again a contiguous prefix.  So per-row
   live counts fully describe every level.
2. **Padding is a fixed point.**  For ``p`` in ``{+0.0, -0.0, NaN}``,
   ``p + p`` is bit-identical to ``p`` in IEEE float64 and every
   supported rounder maps a representable value to itself — so the
   padding-padding pairs of a level all equal the level's padding
   scalar, computed once per level instead of once per slot.  (The one
   level-to-level change is defensively computed anyway: the fold
   carries a real pad slot through the tree, one extra lane per level.)
3. **Mixed pairs are computed, not skipped.**  ``rnd(v + p)`` can
   differ from ``v`` (``-0.0 + 0.0 = +0.0``; any ``v + NaN`` is NaN),
   so pairs joining a live value to a padding slot gather the pad slot
   explicitly through a sentinel index — exactly the value the padded
   fold would see.

Elementwise rounding commutes with gather/scatter, so quantizing the
compact pair sums yields the same bits as quantizing the padded level
(:mod:`tests.kernels.test_segment` holds the two paths byte-identical
across the format zoo, including NaR and signed-zero products).

The ``sequential`` summation order offers no such skip — every trailing
padding slot re-rounds the accumulator (``rnd(acc + p)`` rewrites
``-0.0`` to ``+0.0``) — so sequential contexts keep the padded view.

Mode selection: ``REPRO_SPARSE=ell|segmented|auto`` (default ``auto``,
which picks the segmented fold once the padded view would cost more
than :data:`PAD_RATIO` times the compact one).
"""

from __future__ import annotations

import os
from typing import NamedTuple

import numpy as np

from .scratch import ScratchPool

__all__ = ["SegmentPlan", "segmented_fold", "sparse_mode",
           "use_segmented", "SPARSE_MODES", "PAD_RATIO"]

SPARSE_MODES = ("auto", "ell", "segmented")

#: auto mode switches to the segmented fold when the padded (n, k) view
#: holds more than this many slots per stored entry — near-uniform rows
#: stay on the rectangular ELL gather, skewed ones go compact
PAD_RATIO = 1.5

_SCRATCH = ScratchPool()

_EMPTY = np.empty(0, dtype=np.int64)


def sparse_mode() -> str:
    """The CSR matvec mode from ``REPRO_SPARSE`` (read per call)."""
    mode = os.environ.get("REPRO_SPARSE", "auto").strip().lower() or "auto"
    if mode not in SPARSE_MODES:
        raise ValueError(f"REPRO_SPARSE must be one of {SPARSE_MODES}, "
                         f"got {mode!r}")
    return mode


def use_segmented(n: int, row_width: int, nnz: int,
                  sum_order: str = "pairwise") -> bool:
    """Whether a CSR matvec should take the segmented fold.

    Sequential contexts always decline (see the module docstring);
    otherwise ``REPRO_SPARSE`` decides, with ``auto`` applying the
    :data:`PAD_RATIO` fill heuristic.
    """
    if sum_order != "pairwise":
        return False
    mode = sparse_mode()
    if mode == "ell":
        return False
    if mode == "segmented":
        return True
    return n * row_width > PAD_RATIO * max(nnz, 1)


class _Level(NamedTuple):
    """One fold level: gather/scatter indices over compact live slots.

    ``left``/``right`` index the level's input array (length
    ``size_in + 1``, pad scalar at ``size_in``); ``dst`` indexes the
    output array (length ``size_out + 1``).  The final lane of each is
    the pad-pad pair feeding the next level's pad slot.  ``lo_src`` /
    ``lo_dst`` copy the odd-width leftovers un-rounded.
    """

    left: np.ndarray
    right: np.ndarray
    dst: np.ndarray
    lo_src: np.ndarray
    lo_dst: np.ndarray
    size_in: int
    size_out: int


class SegmentPlan:
    """Precomputed index plan for the segmented rounded pairwise fold.

    Depends only on the sparsity pattern (``indptr`` + row width), so a
    matrix and its quantized copies share one plan.  Total index
    storage is O(nnz): level ``ℓ`` holds ~3 int64 per pair it folds and
    every pair consumes at least one live slot.
    """

    __slots__ = ("n", "row_width", "levels", "final_src")

    def __init__(self, n: int, row_width: int, levels: list[_Level],
                 final_src: np.ndarray):
        self.n = n
        self.row_width = row_width
        self.levels = levels
        self.final_src = final_src

    @classmethod
    def from_csr(cls, indptr: np.ndarray, row_width: int) -> "SegmentPlan":
        """Build the plan for a CSR pattern with the given padded width."""
        indptr = np.asarray(indptr, dtype=np.int64)
        n = indptr.size - 1
        counts = np.diff(indptr)
        in_off = indptr
        k = max(1, int(row_width))
        levels: list[_Level] = []
        while k > 1:
            m = k // 2
            odd = k & 1
            folds = np.minimum(counts, m)
            if odd:
                leftover = counts == k
                counts_next = folds + leftover
            else:
                leftover = None
                counts_next = folds
            out_off = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts_next, out=out_off[1:])
            t_in = int(in_off[-1])
            t_out = int(out_off[-1])
            nfold = int(folds.sum())
            fold_off = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(folds, out=fold_off[1:])
            rows = np.repeat(np.arange(n, dtype=np.int64), folds)
            j = np.arange(nfold, dtype=np.int64) - fold_off[rows]
            left = np.empty(nfold + 1, dtype=np.int64)
            right = np.empty(nfold + 1, dtype=np.int64)
            dst = np.empty(nfold + 1, dtype=np.int64)
            base = in_off[rows]
            np.add(base, j, out=left[:-1])
            jm = j + m
            np.copyto(right[:-1], np.where(jm < counts[rows],
                                           base + jm, t_in))
            np.add(out_off[rows], j, out=dst[:-1])
            left[-1] = right[-1] = t_in
            dst[-1] = t_out
            if odd and leftover is not None and leftover.any():
                lo_rows = np.nonzero(leftover)[0]
                # a full odd row folds exactly m pairs, so its leftover
                # lands right after them: a prefix again
                lo_src = in_off[lo_rows] + (k - 1)
                lo_dst = out_off[lo_rows] + m
            else:
                lo_src = lo_dst = _EMPTY
            levels.append(_Level(left, right, dst, lo_src, lo_dst,
                                 t_in, t_out))
            counts = counts_next
            in_off = out_off
            k = m + odd
        final_src = np.where(counts > 0, in_off[:-1], int(in_off[-1]))
        return cls(n, max(1, int(row_width)), levels, final_src)

    @property
    def nbytes(self) -> int:
        """Total index storage, for memory accounting and tests."""
        total = self.final_src.nbytes
        for lvl in self.levels:
            total += (lvl.left.nbytes + lvl.right.nbytes + lvl.dst.nbytes
                      + lvl.lo_src.nbytes + lvl.lo_dst.nbytes)
        return total


def segmented_fold(products: np.ndarray, plan: SegmentPlan,
                   rnd) -> np.ndarray:
    """Fold the extended product array through the plan's tree.

    *products* is the quantized length ``nnz + 1`` array (pad scalar at
    the sentinel slot, as :meth:`FPContext.matvec` builds it); *rnd* is
    the reduction rounder.  Returns a fresh ``(n,)`` float64 array
    bit-identical to the padded ELL pairwise fold.
    """
    cur = np.asarray(products, dtype=np.float64)
    for lvl in plan.levels:
        width = lvl.left.size
        a = _SCRATCH.take((width,))
        b = _SCRATCH.take((width,))
        try:
            np.take(cur, lvl.left, out=a)
            np.take(cur, lvl.right, out=b)
            np.add(a, b, out=a)
            folded = rnd(a)
            if folded is a:  # pass-through rounder: detach from scratch
                folded = a.copy()
        finally:
            _SCRATCH.give(b)
            _SCRATCH.give(a)
        nxt = _SCRATCH.take((lvl.size_out + 1,))
        nxt[lvl.dst] = folded
        if lvl.lo_src.size:
            # odd leftovers are copied un-rounded, as the padded fold does
            nxt[lvl.lo_dst] = cur[lvl.lo_src]
        if cur is not products:
            _SCRATCH.give(cur)
        cur = nxt
    out = np.take(cur, plan.final_src)
    if cur is not products:
        _SCRATCH.give(cur)
    return out
