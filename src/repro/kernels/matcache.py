"""Per-worker LRU memoization of derived matrices.

A sweep's cells re-derive the same inputs over and over: every CG cell
for a given matrix re-applies the power-of-two rescaling and re-packs
the ELL layout, every Higham-rescaled IR cell re-runs Algorithm 4 —
once per *format*, although the derivation depends only on the matrix
(and, for Higham, the format's dynamic range).  The derivations are
pure functions of ``(matrix name, scale, parameters)``, so each process
— the sweep parent or a ``ProcessPoolExecutor`` worker — keeps one
bounded LRU of them.

The cache changes nothing numerically: a hit returns the exact object a
rebuild would produce (derivations are deterministic), and solvers
treat their inputs as read-only, as they already must for the memoized
``suite_systems`` arrays.

Knobs: ``REPRO_MATRIX_CACHE=off`` disables caching (every lookup
builds), ``REPRO_MATRIX_CACHE_SIZE`` bounds the entry count (default
64).  Misses are traced as ``matrix.derive`` spans through the ambient
tracer; hit/miss/eviction counts surface in the sweep manifest and
``--cache-stats``.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Any, Callable, Hashable

from ..telemetry.trace import span

__all__ = ["MatrixCache", "matrix_cache", "matrix_cache_enabled",
           "reset_matrix_cache"]

_DEFAULT_CAPACITY = 64


def matrix_cache_enabled() -> bool:
    """True unless disabled via ``REPRO_MATRIX_CACHE=off``."""
    return os.environ.get("REPRO_MATRIX_CACHE", "").strip().lower() \
        not in ("off", "0", "no", "false")


def _capacity_from_env() -> int:
    raw = os.environ.get("REPRO_MATRIX_CACHE_SIZE", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return _DEFAULT_CAPACITY


class MatrixCache:
    """A bounded LRU of derived-matrix objects with hit/miss counters."""

    def __init__(self, capacity: int | None = None,
                 enabled: bool | None = None):
        self.capacity = _capacity_from_env() if capacity is None \
            else max(1, int(capacity))
        self.enabled = matrix_cache_enabled() if enabled is None \
            else bool(enabled)
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get_or_build(self, key: Hashable,
                     builder: Callable[[], Any]) -> Any:
        """The cached value for *key*, building (and tracing) on a miss.

        *key* must capture every input of the derivation; builders that
        raise cache nothing.  Disabled caches always build (uncounted).
        """
        if not self.enabled:
            return builder()
        if key in self._entries:
            self.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]
        with span("matrix.derive", key="/".join(map(str, key))
                  if isinstance(key, tuple) else str(key)):
            value = builder()
        self.misses += 1
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return value

    def stats(self) -> dict[str, int]:
        """Counters plus current size, manifest-ready."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries)}

    def snapshot(self) -> tuple[int, int, int]:
        """Counter snapshot for delta accounting across a cell."""
        return (self.hits, self.misses, self.evictions)

    def delta_since(self, snap: tuple[int, int, int]) -> dict[str, int]:
        """Counter movement since :meth:`snapshot` (worker → parent)."""
        return {"hits": self.hits - snap[0],
                "misses": self.misses - snap[1],
                "evictions": self.evictions - snap[2]}

    def absorb(self, delta: dict[str, int] | None) -> None:
        """Fold a worker's counter delta into this (parent) cache."""
        if not delta:
            return
        self.hits += int(delta.get("hits", 0))
        self.misses += int(delta.get("misses", 0))
        self.evictions += int(delta.get("evictions", 0))

    def reset_stats(self) -> None:
        self.hits = self.misses = self.evictions = 0

    def clear(self) -> None:
        """Drop entries and counters (tests)."""
        self._entries.clear()
        self.reset_stats()


_CACHE: MatrixCache | None = None


def matrix_cache() -> MatrixCache:
    """The process-wide cache (one per pool worker, one in the parent)."""
    global _CACHE
    if _CACHE is None:
        _CACHE = MatrixCache()
    return _CACHE


def reset_matrix_cache() -> None:
    """Drop the singleton so the next use re-reads the env knobs."""
    global _CACHE
    _CACHE = None
