"""Table-driven rounding for narrow formats (≤ 2¹⁶ patterns).

The reference rounders (the posit bitwise kernel, the IEEE softfloat
emulation) spend ~20 C-level calls per invocation.  For a format whose
representable set fits in a table — posit(≤16, ·), fp16-class emulated
IEEE, bfloat16, the FP8 minifloats — rounding is a single
``np.searchsorted`` over precomputed **decision boundaries** plus one
``take``.

Correctness by construction
---------------------------
Decision boundaries are *not* arithmetic midpoints: posit rounding in
the tapered regimes rounds the extended bit pattern, so the value-space
boundary between two adjacent posits is a pattern-space midpoint
(geometric-ish), and IEEE ties-to-even picks sides by pattern parity.
Rather than re-deriving each format's tie rules, the table is built by
**bisection against the trusted reference rounder**: for every adjacent
value pair the build binary-searches, in the monotone integer ordering
of float64, for the smallest double the reference rounds *up*.  The
resulting table reproduces the reference bit-for-bit for every float64
input — no tie logic exists to get wrong — and the test suite verifies
every pattern and every boundary neighbourhood exhaustively.

Size crossover
--------------
Binary search over a 64 K-entry table is cache-unfriendly; the bitwise
kernels win on large arrays.  Callers consult :func:`max_eligible_n`
and fall back to their reference kernel above it (both paths are
bit-identical, so switching is free).  ``REPRO_LUT=off`` disables the
tables entirely.
"""

from __future__ import annotations

import os
from typing import Callable, Hashable

import numpy as np

__all__ = ["RoundingTable", "lut_enabled", "max_eligible_n",
           "rounding_table", "MAX_TABLE_BITS"]

#: widest format a table is built for (2**16 values / boundaries)
MAX_TABLE_BITS = 16

_INT64_MIN = np.int64(np.iinfo(np.int64).min)

#: process-wide table cache, keyed by the format's identity key
_TABLES: dict[Hashable, "RoundingTable"] = {}

_ENABLED = os.environ.get("REPRO_LUT", "").strip().lower() not in (
    "off", "0", "no", "false")


def lut_enabled() -> bool:
    """True unless disabled via ``REPRO_LUT=off`` (read at import)."""
    return _ENABLED


def max_eligible_n(nbits: int) -> int:
    """Largest array size the table path should handle for *nbits*.

    Above this, binary search over the table loses to the bitwise
    kernel (measured crossover; small tables stay cache-resident much
    longer than the 64 K ones).
    """
    return 1024 if nbits <= 8 else 256


def _keys_from_floats(v: np.ndarray) -> np.ndarray:
    """Map float64 → int64 so integer order equals value order.

    Non-negative doubles keep their bit pattern; negative ones map to
    ``INT64_MIN - bits`` (involutive, overflow-free for every float64).
    ±0.0 collide on key 0, which is fine — they are the same value.
    """
    b = np.ascontiguousarray(v, dtype=np.float64).view(np.int64)
    return np.where(b >= 0, b, _INT64_MIN - b)


def _floats_from_keys(k: np.ndarray) -> np.ndarray:
    b = np.where(k >= 0, k, _INT64_MIN - k)
    return b.view(np.float64)


class RoundingTable:
    """Sorted representable values + bisection-probed decision boundaries.

    ``boundaries[i]`` is the smallest float64 that the reference rounder
    maps to ``values[i+1]``, so
    ``values[searchsorted(boundaries, x, side="right")]`` equals
    ``reference(x)`` for every finite ``x``.  Non-finite inputs are
    delegated to the reference (posit NaR vs IEEE ±inf semantics differ).
    """

    def __init__(self, values: np.ndarray, boundaries: np.ndarray,
                 reference: Callable[[np.ndarray], np.ndarray]):
        self.values = values
        self.boundaries = boundaries
        self._reference = reference

    @classmethod
    def build(cls, candidates: np.ndarray,
              reference: Callable[[np.ndarray], np.ndarray]
              ) -> "RoundingTable":
        """Build from the format's value set and trusted rounder.

        *candidates* is every decoded pattern value (duplicates, NaNs
        and ±0 sign variants welcome); *reference* must be monotone and
        idempotent — exactly the :class:`NumberFormat` round contract.
        """
        values = np.unique(np.asarray(candidates, dtype=np.float64))
        values = values[~np.isnan(values)]
        if values.size < 2:
            raise ValueError("rounding table needs at least two values")

        keys = _keys_from_floats(values)
        lo = keys[:-1].copy()   # rounds to values[i] (idempotence)
        hi = keys[1:].copy()    # rounds to values[i+1]
        target = np.arange(1, values.size)
        while True:
            gap = hi - lo
            active = gap > 1
            if not active.any():
                break
            mid = lo + (gap >> 1)
            rounded = reference(_floats_from_keys(mid))
            up = np.searchsorted(values, rounded) >= target
            took_up = active & up
            hi = np.where(took_up, mid, hi)
            lo = np.where(active & ~up, mid, lo)
        return cls(values, _floats_from_keys(hi), reference)

    def round_array(self, arr: np.ndarray) -> np.ndarray:
        """Round a float64 array; always returns a fresh array."""
        idx = np.searchsorted(self.boundaries, arr, side="right")
        out = self.values.take(idx)
        zero = out == 0.0
        if zero.any():
            # the table stores one zero; restore the input's zero sign
            # (x * 0.0 is ±0.0 with x's sign for every finite x)
            out[zero] = arr[zero] * 0.0
        bad = ~np.isfinite(arr)
        if bad.any():
            # NaN/±inf semantics differ per family (posit NaR vs IEEE
            # ±inf passthrough); the reference is authoritative
            out[bad] = self._reference(arr[bad])
        return out


def rounding_table(key: Hashable,
                   values_fn: Callable[[], np.ndarray],
                   reference: Callable[[np.ndarray], np.ndarray]
                   ) -> RoundingTable:
    """The cached table for *key*, building it on first use.

    *key* must capture everything that determines the rounding function
    (format class, parameters, rounding mode) — formats pass their
    ``_key()`` identity tuple.
    """
    table = _TABLES.get(key)
    if table is None:
        table = RoundingTable.build(values_fn(), reference)
        _TABLES[key] = table
    return table


def clear_tables() -> None:
    """Drop every cached table (tests)."""
    _TABLES.clear()
