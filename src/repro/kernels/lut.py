"""Table-driven rounding: one-level tables for narrow formats and
two-level (exponent-bucketed) tables toward posit32/fp32 emulation.

The reference rounders (the posit bitwise kernel, the IEEE softfloat
emulation) spend ~20 C-level calls per invocation.  For a format whose
representable set fits in a table — posit(≤16, ·), fp16-class emulated
IEEE, bfloat16, the FP8 minifloats — rounding is a single
``np.searchsorted`` over precomputed **decision boundaries** plus one
``take`` (:class:`RoundingTable`).  Wider formats (posit32es2/es3,
emulated binary32) cannot enumerate 2³² patterns, but their value sets
are *piecewise uniform*: within one power-of-two bucket the spacing is
constant except in the tapered/clamp/overflow extremes.
:class:`TwoLevelTable` exploits that — a first level indexed by the
frexp exponent yields the bucket's granule (uniform regions round with
one divide/rint/multiply) and the few non-uniform buckets fall through
to a second-level dense :class:`RoundingTable` covering only those
regions' values.

Correctness by construction
---------------------------
Decision boundaries are *not* arithmetic midpoints: posit rounding in
the tapered regimes rounds the extended bit pattern, so the value-space
boundary between two adjacent posits is a pattern-space midpoint
(geometric-ish), and IEEE ties-to-even picks sides by pattern parity.
Rather than re-deriving each format's tie rules, the table is built by
**bisection against the trusted reference rounder**: for every adjacent
value pair the build binary-searches, in the monotone integer ordering
of float64, for the smallest double the reference rounds *up*.  The
resulting table reproduces the reference bit-for-bit for every float64
input — no tie logic exists to get wrong — and the test suite verifies
every pattern and every boundary neighbourhood exhaustively.

Size crossover
--------------
Binary search over a 64 K-entry table is cache-unfriendly; the bitwise
kernels win on large arrays.  Callers consult :func:`max_eligible_n`
and fall back to their reference kernel above it (both paths are
bit-identical, so switching is free).  ``REPRO_LUT=off`` disables the
tables entirely.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Hashable

import numpy as np

__all__ = ["RoundingTable", "TwoLevelTable", "lut_enabled",
           "max_eligible_n", "rounding_table", "two_level_table",
           "MAX_TABLE_BITS", "FREXP_E_LO", "FREXP_E_TABLE"]

#: widest format a one-level dense table is built for (2**16 patterns)
MAX_TABLE_BITS = 16

#: frexp exponents of finite nonzero doubles span [-1073, 1024]; every
#: two-level first-level table is indexed by ``frexp(x)[1] - FREXP_E_LO``
FREXP_E_LO = -1073
FREXP_E_TABLE = 2098

_INT64_MIN = np.int64(np.iinfo(np.int64).min)

#: process-wide table caches, keyed by the format's identity key
_TABLES: dict[Hashable, "RoundingTable"] = {}
_TABLES2: dict[Hashable, "TwoLevelTable"] = {}

_ENABLED = os.environ.get("REPRO_LUT", "").strip().lower() not in (
    "off", "0", "no", "false")


def lut_enabled() -> bool:
    """True unless disabled via ``REPRO_LUT=off`` (read at import)."""
    return _ENABLED


def max_eligible_n(nbits: int) -> int:
    """Largest array size the table path should handle for *nbits*.

    Above this, binary search over the table loses to the bitwise
    kernel (measured crossover; small tables stay cache-resident much
    longer than the 64 K ones).
    """
    return 1024 if nbits <= 8 else 256


def _keys_from_floats(v: np.ndarray) -> np.ndarray:
    """Map float64 → int64 so integer order equals value order.

    Non-negative doubles keep their bit pattern; negative ones map to
    ``INT64_MIN - bits`` (involutive, overflow-free for every float64).
    ±0.0 collide on key 0, which is fine — they are the same value.
    """
    b = np.ascontiguousarray(v, dtype=np.float64).view(np.int64)
    return np.where(b >= 0, b, _INT64_MIN - b)


def _floats_from_keys(k: np.ndarray) -> np.ndarray:
    b = np.where(k >= 0, k, _INT64_MIN - k)
    return b.view(np.float64)


class RoundingTable:
    """Sorted representable values + bisection-probed decision boundaries.

    ``boundaries[i]`` is the smallest float64 that the reference rounder
    maps to ``values[i+1]``, so
    ``values[searchsorted(boundaries, x, side="right")]`` equals
    ``reference(x)`` for every finite ``x``.  Non-finite inputs are
    delegated to the reference (posit NaR vs IEEE ±inf semantics differ).
    """

    def __init__(self, values: np.ndarray, boundaries: np.ndarray,
                 reference: Callable[[np.ndarray], np.ndarray]):
        self.values = values
        self.boundaries = boundaries
        self._reference = reference

    @classmethod
    def build(cls, candidates: np.ndarray,
              reference: Callable[[np.ndarray], np.ndarray]
              ) -> "RoundingTable":
        """Build from the format's value set and trusted rounder.

        *candidates* is every decoded pattern value (duplicates, NaNs
        and ±0 sign variants welcome); *reference* must be monotone and
        idempotent — exactly the :class:`NumberFormat` round contract.
        """
        values = np.unique(np.asarray(candidates, dtype=np.float64))
        values = values[~np.isnan(values)]
        if values.size < 2:
            raise ValueError("rounding table needs at least two values")

        keys = _keys_from_floats(values)
        lo = keys[:-1].copy()   # rounds to values[i] (idempotence)
        hi = keys[1:].copy()    # rounds to values[i+1]
        target = np.arange(1, values.size)
        while True:
            gap = hi - lo
            active = gap > 1
            if not active.any():
                break
            mid = lo + (gap >> 1)
            rounded = reference(_floats_from_keys(mid))
            up = np.searchsorted(values, rounded) >= target
            took_up = active & up
            hi = np.where(took_up, mid, hi)
            lo = np.where(active & ~up, mid, lo)
        return cls(values, _floats_from_keys(hi), reference)

    def round_array(self, arr: np.ndarray) -> np.ndarray:
        """Round a float64 array; always returns a fresh array."""
        idx = np.searchsorted(self.boundaries, arr, side="right")
        out = self.values.take(idx)
        zero = out == 0.0
        if zero.any():
            # the table stores one zero; restore the input's zero sign
            # (x * 0.0 is ±0.0 with x's sign for every finite x)
            out[zero] = arr[zero] * 0.0
        bad = ~np.isfinite(arr)
        if bad.any():
            # NaN/±inf semantics differ per family (posit NaR vs IEEE
            # ±inf passthrough); the reference is authoritative
            out[bad] = self._reference(arr[bad])
        return out


class TwoLevelTable:
    """Exponent-bucketed rounding for formats too wide for one table.

    Level 1 is a pair of :data:`FREXP_E_TABLE`-entry arrays indexed by
    the biased frexp exponent of the input: ``granules[e]`` is the
    uniform spacing of representable values in that bucket and
    ``affine[e]`` marks buckets where value rounding is exactly
    ``step(x / g) * g`` (``step`` defaults to :func:`np.rint`,
    round-half-even).  Level 2 is one dense :class:`RoundingTable`
    restricted to the values of the *non*-affine buckets — the posit
    tapered extremes, the sub-minpos/above-maxpos clamp zones, IEEE
    overflow binades — which hold only a handful of values, so the
    dense table stays tiny no matter how wide the format is.

    Non-finite inputs always take the dense route (which delegates
    them to the reference rounder), and an optional *post* hook lets
    IEEE-style formats apply their overflow/saturation rule to the
    affine result.  Bit-identity with the reference is enforced by the
    conformance suite (exhaustive for narrow formats, boundary-biased
    stratified for posit32/binary32).
    """

    def __init__(self, granules: np.ndarray, affine: np.ndarray,
                 dense: RoundingTable,
                 reference: Callable[[np.ndarray], np.ndarray],
                 step: Callable = np.rint,
                 post: Callable[[np.ndarray], np.ndarray] | None = None):
        if granules.shape != (FREXP_E_TABLE,) \
                or affine.shape != (FREXP_E_TABLE,):
            raise ValueError(
                f"level-1 tables must have shape ({FREXP_E_TABLE},)")
        self.granules = np.ascontiguousarray(granules, dtype=np.float64)
        self.affine = np.ascontiguousarray(affine, dtype=np.bool_)
        self.dense = dense
        self._reference = reference
        self._step = step
        self._post = post
        # per-thread workspace bundles keyed by shape: one dict access
        # hands out all five intermediates (vs. five pool take/gives)
        self._ws = threading.local()

    @classmethod
    def build(cls, granules: np.ndarray, affine: np.ndarray,
              dense_candidates: np.ndarray,
              reference: Callable[[np.ndarray], np.ndarray],
              step: Callable = np.rint,
              post: Callable[[np.ndarray], np.ndarray] | None = None
              ) -> "TwoLevelTable":
        """Assemble from a format's bucket spec and trusted rounder.

        *dense_candidates* must contain every value an input from a
        non-affine bucket can round to (bracketing neighbours from the
        adjacent affine buckets included); the dense boundaries are then
        bisection-probed against *reference* exactly like the one-level
        tables, so no clamp/overflow tie logic exists to get wrong.
        """
        dense = RoundingTable.build(dense_candidates, reference)
        return cls(granules, affine, dense, reference, step, post)

    def _workspace(self, shape: tuple) -> tuple[list, tuple]:
        stacks = getattr(self._ws, "stacks", None)
        if stacks is None:
            stacks = {}
            self._ws.stacks = stacks
        stack = stacks.setdefault(shape, [])
        if stack:
            return stack, stack.pop()
        return stack, (np.empty(shape), np.empty(shape),
                       np.empty(shape, np.int32),
                       np.empty(shape, np.bool_),
                       np.empty(shape, np.bool_))

    def round_array(self, arr: np.ndarray) -> np.ndarray:
        """Round a float64 array; always returns a fresh array."""
        stack, ws = self._workspace(arr.shape)
        m, g, e, aff, fin = ws
        try:
            with np.errstate(invalid="ignore", over="ignore"):
                np.frexp(arr, m, e)
                np.subtract(e, np.int32(FREXP_E_LO), out=e)
                self.granules.take(e, out=g)
                self.affine.take(e, out=aff)
                # uniform-bucket rounding; non-affine lanes compute
                # garbage here and are overwritten below
                np.divide(arr, g, out=m)
                self._step(m, out=m)
                out = np.multiply(m, g)
                np.isfinite(arr, out=fin)
                np.logical_and(aff, fin, out=aff)
                if self._post is not None:
                    out = self._post(out)
            if not aff.all():
                np.logical_not(aff, out=aff)
                out[aff] = self.dense.round_array(arr[aff])
            return out
        finally:
            if len(stack) < 4:
                stack.append(ws)


def two_level_table(key: Hashable,
                    spec_fn: Callable[[], tuple],
                    reference: Callable[[np.ndarray], np.ndarray],
                    step: Callable = np.rint,
                    post: Callable[[np.ndarray], np.ndarray] | None = None,
                    fmt_name: str = "") -> TwoLevelTable:
    """The cached two-level table for *key*, building it on first use.

    *spec_fn* returns ``(granules, affine, dense_candidates)``; *key*
    follows the same contract as :func:`rounding_table`.  First use
    consults the persistent store of :mod:`.tabcache` before paying the
    bisection build; *fmt_name* (the registry name) is written into
    stored files so :func:`.tabcache.preload_cached` can warm them.
    """
    table = _TABLES2.get(key)
    if table is None:
        from . import tabcache
        arrs = tabcache.load_arrays("two_level", key)
        if arrs is not None:
            dense = RoundingTable(arrs["values"], arrs["boundaries"],
                                  reference)
            table = TwoLevelTable(arrs["granules"], arrs["affine"],
                                  dense, reference, step=step, post=post)
        else:
            granules, affine, candidates = spec_fn()
            table = TwoLevelTable.build(granules, affine, candidates,
                                        reference, step=step, post=post)
            tabcache.table_stats().builds += 1
            tabcache.store_arrays(
                "two_level", key, fmt_name,
                {"granules": table.granules, "affine": table.affine,
                 "values": table.dense.values,
                 "boundaries": table.dense.boundaries})
        _TABLES2[key] = table
    return table


def rounding_table(key: Hashable,
                   values_fn: Callable[[], np.ndarray],
                   reference: Callable[[np.ndarray], np.ndarray],
                   fmt_name: str = "") -> RoundingTable:
    """The cached table for *key*, building it on first use.

    *key* must capture everything that determines the rounding function
    (format class, parameters, rounding mode) — formats pass their
    ``_key()`` identity tuple.  Like :func:`two_level_table`, first use
    tries the persistent :mod:`.tabcache` store before building.
    """
    table = _TABLES.get(key)
    if table is None:
        from . import tabcache
        arrs = tabcache.load_arrays("dense", key)
        if arrs is not None:
            table = RoundingTable(arrs["values"], arrs["boundaries"],
                                  reference)
        else:
            table = RoundingTable.build(values_fn(), reference)
            tabcache.table_stats().builds += 1
            tabcache.store_arrays(
                "dense", key, fmt_name,
                {"values": table.values, "boundaries": table.boundaries})
        _TABLES[key] = table
    return table


def clear_tables() -> None:
    """Drop every cached table (tests)."""
    _TABLES.clear()
    _TABLES2.clear()
