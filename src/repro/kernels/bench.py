"""Kernel microbenchmarks and the ``BENCH_kernels.json`` trajectory.

Measures the primitives every experiment is built on — quantize, dot,
matvec, rounded sum, blocked gemm and the batched ``gemm_many`` —
per format and size, and writes a bench payload
(``kind: "kernels"``) that ``python -m repro.telemetry bench-diff``
compares against the committed ``benchmarks/BENCH_kernels.json`` the
same way experiment sweeps diff against ``BENCH_experiments.json``.

Timing protocol: each entry is the best of ``repeats`` timed loops
(min over medians is too clever; min over loop averages is the
standard microbench estimator robust to scheduler noise).  Quantize
entries additionally time the format's bitwise/softfloat reference
path, so the table-lookup speedup of :mod:`repro.kernels.lut` is
visible per size — including the sizes above the crossover where both
paths are the same code.

Run as a module::

    python -m repro.kernels.bench --output benchmarks/BENCH_kernels.json
    python -m repro.kernels.bench --sweep --sweep-baseline 5.68

``--sweep`` times the fig06 smoke sweep's cell compute (result cache
off, serial) and records it under ``sweeps.fig06_smoke`` next to the
optional same-machine baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable

import numpy as np

__all__ = ["measure", "microbench", "run_fig06_smoke", "main",
           "QUANTIZE_FORMATS", "CONTEXT_FORMATS", "QUANTIZE_SIZES",
           "CONTEXT_SIZES"]

#: quantize coverage: the paper's narrow actors (LUT-eligible) plus the
#: wide posits that exercise the bitwise kernel only
QUANTIZE_FORMATS = ("posit8es0", "posit16es1", "posit16es2", "bf16",
                    "fp8e4m3", "posit32es2", "posit32es3")
QUANTIZE_SIZES = (32, 128, 1024, 65536)
#: context ops: one narrow and one wide format per solver family
CONTEXT_FORMATS = ("posit16es1", "posit32es2", "fp32")
CONTEXT_SIZES = (24, 96)


def measure(fn: Callable[[], object], repeats: int = 5,
            loops: int | None = None,
            min_time: float = 0.01) -> float:
    """Best average seconds/call over *repeats* timed loops."""
    if loops is None:
        loops = 1
        while True:
            t0 = time.perf_counter()
            for _ in range(loops):
                fn()
            if time.perf_counter() - t0 >= min_time or loops >= 65536:
                break
            loops *= 4
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(loops):
            fn()
        best = min(best, (time.perf_counter() - t0) / loops)
    return best


def _quantize_reference(fmt) -> Callable[[np.ndarray], np.ndarray] | None:
    """The format's non-LUT rounding kernel, when it has one."""
    if hasattr(fmt, "_bitwise_round"):
        return fmt._bitwise_round
    if hasattr(fmt, "_round_impl"):
        return fmt._round_impl
    return None


def microbench(formats: tuple[str, ...] = QUANTIZE_FORMATS,
               sizes: tuple[int, ...] = QUANTIZE_SIZES,
               ctx_formats: tuple[str, ...] = CONTEXT_FORMATS,
               ctx_sizes: tuple[int, ...] = CONTEXT_SIZES,
               repeats: int = 5) -> dict[str, dict]:
    """The ``kernels`` map: ``{kernel-id: {seconds, ...}}``."""
    from ..arith.context import FPContext
    from ..formats.registry import get_format

    rng = np.random.default_rng(12345)
    kernels: dict[str, dict] = {}

    for name in formats:
        fmt = get_format(name)
        ref = _quantize_reference(fmt)
        for n in sizes:
            x = rng.standard_normal(n)
            fmt.round(x)  # warm caches / tables outside the timer
            entry = {"seconds": measure(lambda: fmt.round(x), repeats)}
            if ref is not None:
                ref(x)
                entry["bitwise_s"] = measure(lambda: ref(x), repeats)
                entry["speedup_vs_bitwise"] = round(
                    entry["bitwise_s"] / entry["seconds"], 3)
            kernels[f"quantize/{name}/n{n}"] = entry

    for name in ctx_formats:
        ctx = FPContext(name)
        for n in ctx_sizes:
            v = rng.standard_normal(n)
            A = rng.standard_normal((n, n))
            v = np.asarray(ctx.asarray(v))
            A = np.asarray(ctx.asarray(A))
            ctx.dot(v, v)
            kernels[f"dot/{name}/n{n}"] = {
                "seconds": measure(lambda: ctx.dot(v, v), repeats)}
            ctx.matvec(A, v)
            kernels[f"matvec/{name}/n{n}"] = {
                "seconds": measure(lambda: ctx.matvec(A, v), repeats)}
            ctx.sum(v)
            kernels[f"sum/{name}/n{n}"] = {
                "seconds": measure(lambda: ctx.sum(v), repeats)}
            B = np.asarray(ctx.asarray(rng.standard_normal((n, n))))
            ctx.gemm(A, B)
            kernels[f"gemm/{name}/n{n}"] = {
                "seconds": measure(lambda: ctx.gemm(A, B), repeats)}
            # batched: 4 same-shape products through one quantize/fold
            # per chunk, vs the same 4 through the scalar loop
            pairs = [(A, B)] * 4
            ctx.gemm_many(pairs)
            entry = {"seconds": measure(lambda: ctx.gemm_many(pairs),
                                        repeats),
                     "serial_s": measure(
                         lambda: [ctx.gemm(a, b) for a, b in pairs],
                         repeats)}
            entry["speedup_vs_serial"] = round(
                entry["serial_s"] / entry["seconds"], 3)
            kernels[f"gemm_many/{name}/n{n}"] = entry

    for key, entry in kernels.items():
        entry["seconds"] = round(entry["seconds"], 9)
        for extra in ("bitwise_s", "serial_s"):
            if extra in entry:
                entry[extra] = round(entry[extra], 9)
    return kernels


def run_fig06_smoke() -> float:
    """Cell-compute seconds of a cold, serial, cache-off fig06 sweep."""
    from ..config import SCALES
    from ..experiments.common import clear_cache, compute_cell
    from ..experiments.registry import get_experiment
    from .matcache import matrix_cache

    scale = SCALES["smoke"]
    cells = get_experiment("fig6").enumerate_cells(scale)
    clear_cache()
    matrix_cache().clear()
    t0 = time.perf_counter()
    for cell in cells:
        compute_cell(cell, scale)
    return time.perf_counter() - t0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.kernels.bench",
        description="kernel microbenchmarks -> BENCH_kernels.json")
    parser.add_argument("--output", default=None,
                        help="write the payload here (default: stdout)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed loops per entry (default 5)")
    parser.add_argument("--sweep", action="store_true",
                        help="also time the fig06 smoke sweep "
                             "(serial, result cache bypassed)")
    parser.add_argument("--sweep-baseline", type=float, default=None,
                        metavar="SECONDS",
                        help="same-machine baseline for the sweep entry")
    args = parser.parse_args(argv)

    payload: dict = {"version": 1, "kind": "kernels",
                     "kernels": microbench(repeats=args.repeats)}
    if args.sweep:
        # best-of-3: single sweep timings are dominated by OS jitter
        seconds = min(run_fig06_smoke() for _ in range(3))
        entry = {"current_s": round(seconds, 3)}
        if args.sweep_baseline:
            entry["baseline_s"] = args.sweep_baseline
            entry["speedup"] = round(args.sweep_baseline / seconds, 3)
        payload["sweeps"] = {"fig06_smoke": entry}

    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.output:
        os.makedirs(os.path.dirname(args.output) or ".", exist_ok=True)
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.output} ({len(payload['kernels'])} kernels)")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
