"""Kernel microbenchmarks and the ``BENCH_kernels.json`` trajectory.

Measures the primitives every experiment is built on — quantize, dot,
matvec, rounded sum, blocked gemm and the batched ``gemm_many`` —
per format and size, and writes a bench payload
(``kind: "kernels"``) that ``python -m repro.telemetry bench-diff``
compares against the committed ``benchmarks/BENCH_kernels.json`` the
same way experiment sweeps diff against ``BENCH_experiments.json``.

Timing protocol: each entry is the best of ``repeats`` timed loops
(min over medians is too clever; min over loop averages is the
standard microbench estimator robust to scheduler noise).  Quantize
entries additionally time the format's bitwise/softfloat reference
path, so the table-lookup speedup of :mod:`repro.kernels.lut` is
visible per size — including the sizes above the crossover where both
paths are the same code.

Run as a module::

    python -m repro.kernels.bench --output benchmarks/BENCH_kernels.json
    python -m repro.kernels.bench --only sparse/,table_cache/
    python -m repro.kernels.bench --sweep --sweep-baseline 5.68
    python -m repro.kernels.bench --sparse-sweep

``--only`` restricts measurement to entries whose id starts with one
of the comma-separated prefixes (the rest are skipped, not zeroed).
``--sweep`` times the fig06 smoke sweep's cell compute (result cache
off, serial) and records it under ``sweeps.fig06_smoke`` next to the
optional same-machine baseline.  ``--sparse-sweep`` times the skewed
solver-grid smoke sweep (CG × format zoo on the ``arrow_496`` extra)
with the padded route pinned as its own same-machine baseline, so the
committed ``sweeps.sparse_grid_smoke.speedup`` is the segmented
engine's end-to-end ratchet.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable

import numpy as np

__all__ = ["measure", "microbench", "sparse_microbench",
           "table_cache_bench", "run_fig06_smoke",
           "run_sparse_grid_smoke", "main",
           "QUANTIZE_FORMATS", "CONTEXT_FORMATS", "QUANTIZE_SIZES",
           "CONTEXT_SIZES", "SPARSE_MATRICES", "SPARSE_FORMATS"]

#: quantize coverage: the paper's narrow actors (LUT-eligible) plus the
#: wide posits that exercise the bitwise kernel only
QUANTIZE_FORMATS = ("posit8es0", "posit16es1", "posit16es2", "bf16",
                    "fp8e4m3", "posit32es2", "posit32es3")
QUANTIZE_SIZES = (32, 128, 1024, 65536)
#: context ops: one narrow and one wide format per solver family
CONTEXT_FORMATS = ("posit16es1", "posit32es2", "fp32")
CONTEXT_SIZES = (24, 96)
#: sparse matvec coverage: the paper's largest near-uniform system and
#: the skewed arrow extra, both at their full published dimension
SPARSE_MATRICES = ("1138_bus", "arrow_496")
SPARSE_FORMATS = ("fp16", "posit32es2")


def measure(fn: Callable[[], object], repeats: int = 5,
            loops: int | None = None,
            min_time: float = 0.01) -> float:
    """Best average seconds/call over *repeats* timed loops."""
    if loops is None:
        loops = 1
        while True:
            t0 = time.perf_counter()
            for _ in range(loops):
                fn()
            if time.perf_counter() - t0 >= min_time or loops >= 65536:
                break
            loops *= 4
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(loops):
            fn()
        best = min(best, (time.perf_counter() - t0) / loops)
    return best


def _quantize_reference(fmt) -> Callable[[np.ndarray], np.ndarray] | None:
    """The format's non-LUT rounding kernel, when it has one."""
    if hasattr(fmt, "_bitwise_round"):
        return fmt._bitwise_round
    if hasattr(fmt, "_round_impl"):
        return fmt._round_impl
    return None


def _selected(key: str, only: tuple[str, ...] | None) -> bool:
    return only is None or any(key.startswith(p) for p in only)


def microbench(formats: tuple[str, ...] = QUANTIZE_FORMATS,
               sizes: tuple[int, ...] = QUANTIZE_SIZES,
               ctx_formats: tuple[str, ...] = CONTEXT_FORMATS,
               ctx_sizes: tuple[int, ...] = CONTEXT_SIZES,
               repeats: int = 5,
               only: tuple[str, ...] | None = None) -> dict[str, dict]:
    """The ``kernels`` map: ``{kernel-id: {seconds, ...}}``.

    *only* restricts measurement to ids starting with one of the given
    prefixes (unmeasured entries are omitted entirely).
    """
    from ..arith.context import FPContext
    from ..formats.registry import get_format

    rng = np.random.default_rng(12345)
    kernels: dict[str, dict] = {}

    for name in formats:
        fmt = get_format(name)
        ref = _quantize_reference(fmt)
        for n in sizes:
            key = f"quantize/{name}/n{n}"
            x = rng.standard_normal(n)
            if not _selected(key, only):
                continue
            fmt.round(x)  # warm caches / tables outside the timer
            entry = {"seconds": measure(lambda: fmt.round(x), repeats)}
            if ref is not None:
                ref(x)
                entry["bitwise_s"] = measure(lambda: ref(x), repeats)
                entry["speedup_vs_bitwise"] = round(
                    entry["bitwise_s"] / entry["seconds"], 3)
            kernels[key] = entry

    for name in ctx_formats:
        ctx = FPContext(name)
        for n in ctx_sizes:
            keys = {op: f"{op}/{name}/n{n}"
                    for op in ("dot", "matvec", "sum", "gemm",
                               "gemm_many")}
            if not any(_selected(k, only) for k in keys.values()):
                continue
            v = rng.standard_normal(n)
            A = rng.standard_normal((n, n))
            v = np.asarray(ctx.asarray(v))
            A = np.asarray(ctx.asarray(A))
            B = np.asarray(ctx.asarray(rng.standard_normal((n, n))))
            for op, fn in ((keys["dot"], lambda: ctx.dot(v, v)),
                           (keys["matvec"], lambda: ctx.matvec(A, v)),
                           (keys["sum"], lambda: ctx.sum(v)),
                           (keys["gemm"], lambda: ctx.gemm(A, B))):
                if not _selected(op, only):
                    continue
                fn()
                kernels[op] = {"seconds": measure(fn, repeats)}
            if _selected(keys["gemm_many"], only):
                # batched: 4 same-shape products through one
                # quantize/fold per chunk, vs the scalar loop
                pairs = [(A, B)] * 4
                ctx.gemm_many(pairs)
                entry = {"seconds": measure(
                             lambda: ctx.gemm_many(pairs), repeats),
                         "serial_s": measure(
                             lambda: [ctx.gemm(a, b) for a, b in pairs],
                             repeats)}
                entry["speedup_vs_serial"] = round(
                    entry["serial_s"] / entry["seconds"], 3)
                kernels[keys["gemm_many"]] = entry

    kernels.update(sparse_microbench(repeats=repeats, only=only))
    kernels.update(table_cache_bench(only=only))

    for key, entry in kernels.items():
        entry["seconds"] = round(entry["seconds"], 9)
        for extra in ("bitwise_s", "serial_s", "padded_s", "ell_s",
                      "cold_s", "warm_s"):
            if extra in entry:
                entry[extra] = round(entry[extra], 9)
    return kernels


def sparse_microbench(matrices: tuple[str, ...] = SPARSE_MATRICES,
                      formats: tuple[str, ...] = SPARSE_FORMATS,
                      repeats: int = 5,
                      only: tuple[str, ...] | None = None
                      ) -> dict[str, dict]:
    """Sparse matvec entries: ELL vs padded-CSR vs segmented-CSR.

    Matrices run at their full published dimension (the ``full`` run
    scale) so the skewed arrow keeps its adversarial pad ratio; each
    CSR route is forced through ``REPRO_SPARSE`` and the segmented
    entry records its speedup over both alternatives.
    """
    from ..arith.context import FPContext
    from ..arith.sparse import CSRMatrix, ELLMatrix
    from ..config import SCALES
    from ..matrices import load_matrix

    rng = np.random.default_rng(67890)
    kernels: dict[str, dict] = {}
    saved = os.environ.get("REPRO_SPARSE")
    try:
        for mname in matrices:
            keys = [f"sparse/matvec/{mname}/{f}/{lay}"
                    for f in formats
                    for lay in ("ell", "csr_padded", "csr_segmented")]
            if not any(_selected(k, only) for k in keys):
                continue
            A = load_matrix(mname, SCALES["full"])
            x = rng.standard_normal(A.shape[0])
            ell = ELLMatrix.from_dense(A)
            csr = CSRMatrix.from_dense(A)
            for fname in formats:
                ctx = FPContext(fname)
                ellq = ctx.asarray(ell)
                csrq = ctx.asarray(csr)
                base = f"sparse/matvec/{mname}/{fname}"
                secs: dict[str, float] = {}
                for lay, mat, mode in (("ell", ellq, "ell"),
                                       ("csr_padded", csrq, "ell"),
                                       ("csr_segmented", csrq,
                                        "segmented")):
                    key = f"{base}/{lay}"
                    if not _selected(key, only):
                        continue
                    os.environ["REPRO_SPARSE"] = mode
                    ctx.matvec(mat, x)  # warm plan / slot map
                    secs[lay] = measure(lambda: ctx.matvec(mat, x),
                                        repeats)
                    kernels[key] = {"seconds": secs[lay]}
                seg = f"{base}/csr_segmented"
                if "csr_segmented" in secs:
                    entry = kernels[seg]
                    if "csr_padded" in secs:
                        entry["padded_s"] = secs["csr_padded"]
                        entry["speedup_vs_padded"] = round(
                            secs["csr_padded"] / secs["csr_segmented"],
                            3)
                    if "ell" in secs:
                        entry["ell_s"] = secs["ell"]
                        entry["speedup_vs_ell"] = round(
                            secs["ell"] / secs["csr_segmented"], 3)
    finally:
        if saved is None:
            os.environ.pop("REPRO_SPARSE", None)
        else:
            os.environ["REPRO_SPARSE"] = saved
    return kernels


def table_cache_bench(only: tuple[str, ...] | None = None
                      ) -> dict[str, dict]:
    """Cold bisection build vs warm mmap load of the posit32es2 table.

    Runs in a throwaway results dir so it never touches (or benefits
    from) the machine's real table store; fresh format instances keep
    the in-memory caches out of both timings.  The committed
    ``speedup`` is the worker warm-start ratchet (≥ 5×).
    """
    key = "table_cache/posit32es2/two_level"
    if not _selected(key, only):
        return {}
    import shutil
    import tempfile

    from ..formats.posit_format import PositFormat
    from . import lut, tabcache

    saved = os.environ.get("REPRO_RESULTS_DIR")
    tmp = tempfile.mkdtemp(prefix="repro-tabbench-")
    stats = tabcache.table_stats()
    snap = stats.snapshot()
    try:
        os.environ["REPRO_RESULTS_DIR"] = tmp
        lut.clear_tables()
        t0 = time.perf_counter()
        PositFormat(32, 2)._two_level_table()  # builds + stores
        cold = time.perf_counter() - t0
        lut.clear_tables()
        t0 = time.perf_counter()
        PositFormat(32, 2)._two_level_table()  # mmap loads
        warm = time.perf_counter() - t0
    finally:
        lut.clear_tables()
        if saved is None:
            os.environ.pop("REPRO_RESULTS_DIR", None)
        else:
            os.environ["REPRO_RESULTS_DIR"] = saved
        shutil.rmtree(tmp, ignore_errors=True)
        # a bench must not skew the process-wide sweep counters
        delta = stats.delta_since(snap)
        for field, d in delta.items():
            setattr(stats, field, getattr(stats, field) - d)
    return {key: {"seconds": warm, "cold_s": cold, "warm_s": warm,
                  "speedup": round(cold / warm, 3)}}


def run_fig06_smoke() -> float:
    """Cell-compute seconds of a cold, serial, cache-off fig06 sweep."""
    from ..config import SCALES
    from ..experiments.common import clear_cache, compute_cell
    from ..experiments.registry import get_experiment
    from .matcache import matrix_cache

    scale = SCALES["smoke"]
    cells = get_experiment("fig6").enumerate_cells(scale)
    clear_cache()
    matrix_cache().clear()
    t0 = time.perf_counter()
    for cell in cells:
        compute_cell(cell, scale)
    return time.perf_counter() - t0


def run_sparse_grid_smoke(mode: str) -> float:
    """Cell-compute seconds of the skewed solver-grid smoke sweep.

    CG × the grid format zoo on the ``arrow_496`` extra at the
    ``full`` run scale (the only scale where the arrow keeps its
    published 96× pad ratio — smaller scales cap the dimension and
    flatten the skew).  *mode* pins ``REPRO_SPARSE`` for the run, so
    ``ell`` replays the padded PR-9 baseline on the same machine and
    ``auto`` times the segmented engine.
    """
    from ..config import SCALES
    from ..experiments.common import (clear_cache, compute_cell,
                                      grid_cells)
    from .matcache import matrix_cache

    scale = SCALES["full"]
    cells = grid_cells(scale, solvers=("cg",), names=("arrow_496",))
    saved = os.environ.get("REPRO_SPARSE")
    os.environ["REPRO_SPARSE"] = mode
    try:
        clear_cache()
        matrix_cache().clear()
        t0 = time.perf_counter()
        for cell in cells:
            compute_cell(cell, scale)
        return time.perf_counter() - t0
    finally:
        if saved is None:
            os.environ.pop("REPRO_SPARSE", None)
        else:
            os.environ["REPRO_SPARSE"] = saved


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.kernels.bench",
        description="kernel microbenchmarks -> BENCH_kernels.json")
    parser.add_argument("--output", default=None,
                        help="write the payload here (default: stdout)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed loops per entry (default 5)")
    parser.add_argument("--only", default=None, metavar="PREFIX[,..]",
                        help="measure only kernel ids starting with "
                             "one of these comma-separated prefixes")
    parser.add_argument("--sweep", action="store_true",
                        help="also time the fig06 smoke sweep "
                             "(serial, result cache bypassed)")
    parser.add_argument("--sweep-baseline", type=float, default=None,
                        metavar="SECONDS",
                        help="same-machine baseline for the sweep entry")
    parser.add_argument("--sparse-sweep", action="store_true",
                        help="also time the skewed solver-grid smoke "
                             "sweep, padded (REPRO_SPARSE=ell) vs "
                             "segmented (auto), best-of-3 each")
    args = parser.parse_args(argv)

    only = tuple(p.strip() for p in args.only.split(",")
                 if p.strip()) if args.only else None
    payload: dict = {"version": 1, "kind": "kernels",
                     "kernels": microbench(repeats=args.repeats,
                                           only=only)}
    sweeps: dict = {}
    if args.sweep:
        # best-of-3: single sweep timings are dominated by OS jitter
        seconds = min(run_fig06_smoke() for _ in range(3))
        entry = {"current_s": round(seconds, 3)}
        if args.sweep_baseline:
            entry["baseline_s"] = args.sweep_baseline
            entry["speedup"] = round(args.sweep_baseline / seconds, 3)
        sweeps["fig06_smoke"] = entry
    if args.sparse_sweep:
        baseline = min(run_sparse_grid_smoke("ell") for _ in range(3))
        seconds = min(run_sparse_grid_smoke("auto") for _ in range(3))
        sweeps["sparse_grid_smoke"] = {
            "baseline_ell_s": round(baseline, 3),
            "current_s": round(seconds, 3),
            "speedup": round(baseline / seconds, 3)}
    if sweeps:
        payload["sweeps"] = sweeps

    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.output:
        os.makedirs(os.path.dirname(args.output) or ".", exist_ok=True)
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.output} ({len(payload['kernels'])} kernels)")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
