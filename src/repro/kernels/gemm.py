"""Blocked and batched GEMM kernels for the emulated contexts.

:meth:`repro.FPContext.gemm` materializes the full rank-1 term cube
``terms[i, k, j] = A[i, k] * B[k, j]`` before rounding and reducing —
exact but O(m·k·n) memory, and each quantize call sees the whole cube.
The kernels here tile that cube into **(i, j) panels**: one operand
slice is multiplied into a bounded scratch cube, quantized once per
panel (amortizing the rounding-table dispatch over the whole panel),
and folded with the context's summation schedule.

Bit-identity argument: quantization is elementwise, and both summation
orders (:mod:`repro.arith.summation`) fold each output lane ``(i, j)``
independently along k.  Splitting the *i*/*j* axes therefore permutes
neither the products nor any fold, so every partial sum — and hence
every rounded value — is unchanged.  Splitting k would change the fold
shape, so the panel iterator never tiles k.  The differential harness
(``tests/kernels/test_batched_differential.py``) and the batched golden
digests hold the kernels to this.

``REPRO_GEMM_BLOCKED=off`` restores the monolithic path (read at
import, like ``REPRO_LUT``); telemetry gains one ``gemm.block`` span
per panelled call when a tracer is active.
"""

from __future__ import annotations

import os

import numpy as np

from ..arith.summation import rounded_sum_last_axis
from .scratch import ScratchPool

__all__ = ["BLOCK_ELEMS", "batched_gemm", "blocked_enabled",
           "blocked_gemm", "panel_ranges"]

#: element budget for one panel's product cube — big enough that the
#: per-panel Python overhead is noise, small enough to stay cache-warm
#: (measured crossover on the fig06/table02 problem sizes)
BLOCK_ELEMS = 1 << 15

_SCRATCH = ScratchPool()

_ENABLED = os.environ.get("REPRO_GEMM_BLOCKED", "").strip().lower() not in (
    "off", "0", "no", "false")


def blocked_enabled() -> bool:
    """True unless disabled via ``REPRO_GEMM_BLOCKED=off`` (import-time)."""
    return _ENABLED


def panel_ranges(m: int, n: int, k: int, budget: int = BLOCK_ELEMS):
    """Yield ``(i0, i1, j0, j1)`` output panels for an m×k · k×n GEMM.

    Each panel's product cube holds at most *budget* elements when
    possible (a single k-lane can exceed any budget; k is never split —
    see the module docstring).  Full-width row panels are preferred so
    the operand slices stay contiguous.
    """
    if k * n <= budget:
        rows, cols = max(1, min(m, budget // max(k * n, 1))), n
    else:
        rows, cols = 1, max(1, min(n, budget // max(k, 1)))
    for i0 in range(0, m, rows):
        for j0 in range(0, n, cols):
            yield i0, min(i0 + rows, m), j0, min(j0 + cols, n)


def blocked_gemm(A: np.ndarray, B: np.ndarray, quantize_mul, rnd,
                 sum_order: str, budget: int = BLOCK_ELEMS) -> np.ndarray:
    """Panel-tiled rounded GEMM, bit-identical to the monolithic cube.

    *quantize_mul* rounds one panel's product cube (the context's
    ``gemm.mul`` site); *rnd* / *sum_order* drive the per-lane fold.
    """
    m, k = A.shape
    n = B.shape[1]
    panels = list(panel_ranges(m, n, k, budget))
    out = None if len(panels) == 1 else np.empty((m, n), dtype=np.float64)
    for i0, i1, j0, j1 in panels:
        buf = _SCRATCH.take((i1 - i0, k, j1 - j0))
        try:
            with np.errstate(invalid="ignore", over="ignore"):
                np.multiply(A[i0:i1, :, np.newaxis],
                            B[np.newaxis, :, j0:j1], out=buf)
            terms = quantize_mul(buf)
        finally:
            _SCRATCH.give(buf)
        # move k to the last axis: terms[i, k, j] -> [i, j, k]
        folded = rounded_sum_last_axis(np.moveaxis(terms, 1, -1),
                                       rnd, sum_order)
        if out is None:
            return folded
        out[i0:i1, j0:j1] = folded
    return out


def batched_gemm(As, Bs, quantize_mul, rnd, sum_order: str,
                 budget: int = BLOCK_ELEMS) -> list[np.ndarray]:
    """Rounded GEMM over a batch of same-shape operand pairs.

    Stacks chunks of the batch into one ``(b, m, k, n)`` product cube
    so the whole chunk is quantized and folded in single calls —
    element-identical to looping :func:`blocked_gemm` over the pairs,
    because quantization is elementwise and every ``(b, i, j)`` lane
    still folds independently along k.  Pairs whose single product cube
    exceeds the budget fall back to the per-pair blocked kernel.
    """
    m, k = As[0].shape
    n = Bs[0].shape[1]
    per = m * k * n
    if per > budget:
        return [blocked_gemm(A, B, quantize_mul, rnd, sum_order, budget)
                for A, B in zip(As, Bs)]
    chunk = max(1, budget // max(per, 1))
    out: list[np.ndarray] = []
    for c0 in range(0, len(As), chunk):
        A = np.stack(As[c0:c0 + chunk])
        B = np.stack(Bs[c0:c0 + chunk])
        buf = _SCRATCH.take((A.shape[0], m, k, n))
        try:
            with np.errstate(invalid="ignore", over="ignore"):
                np.multiply(A[:, :, :, np.newaxis],
                            B[:, np.newaxis, :, :], out=buf)
            terms = quantize_mul(buf)
        finally:
            _SCRATCH.give(buf)
        # terms[b, i, k, j] -> [b, i, j, k]
        folded = rounded_sum_last_axis(np.moveaxis(terms, 2, -1),
                                       rnd, sum_order)
        out.extend(folded[b] for b in range(folded.shape[0]))
    return out
