"""Persistent on-disk cache for the rounding tables of :mod:`.lut`.

Building the two-level posit32/takum32 tables means bisection-probing
thousands of decision boundaries against the bitwise reference rounder
— cheap next to a sweep, expensive next to a worker's startup.  Every
process historically paid it once per table; a supervised pool of N
workers paid it N times, and the long-lived experiment service paid it
again on every restart.  This module makes the build once-per-machine:
tables are serialized under ``results/.cache/tables/`` keyed by

    sha256(kind, format identity key, code fingerprint)

and loaded back by ``mmap`` — the arrays are zero-copy views into the
page cache, so concurrent workers share one physical copy.

File format (all little-endian, numpy-native):

* one UTF-8 JSON header line (``format`` registry name, ``kind``,
  ``key`` repr, per-array dtype/shape/offset metadata),
* the raw C-contiguous array bytes at 64-byte-aligned offsets,
* the :mod:`repro.experiments.cache` checksum-footer discipline —
  magic + sha256 over everything before it — so a truncated or
  bit-rotted file is *detected*, dropped, and rebuilt, never trusted.

Only the arrays are persisted.  The callables a table carries (the
trusted reference rounder, the affine step/post hooks) are re-bound
from the live format object at load time, so a cache file can never
smuggle stale behaviour past the code fingerprint.

Writes are atomic (:func:`repro.resilience.atomic.atomic_open`) and
ENOSPC-tolerant: a full disk counts a ``write_error`` and the build
proceeds uncached.  ``REPRO_TABLE_CACHE=off`` disables the cache (read
per call); counters surface in the sweep manifest and
``--cache-stats``, and :func:`preload_cached` lets pool workers warm
every table the machine has already built before their first cell.
"""

from __future__ import annotations

import contextlib
import errno
import hashlib
import json
import mmap
import os
from typing import Hashable

import numpy as np

__all__ = ["TableCacheStats", "table_cache_enabled", "table_stats",
           "load_arrays", "store_arrays", "preload_cached",
           "table_cache_dir", "entry_path", "clear_table_cache",
           "TABLE_DIR_NAME", "SUFFIX"]

#: subdirectory of ``results/.cache`` holding table files
TABLE_DIR_NAME = "tables"

SUFFIX = ".rpt"

#: footer discipline shared with the result cache (RPRCv1), distinct
#: magic so a table file can never be mistaken for a pickle entry
_FOOTER_MAGIC = b"RPRTv1"
_FOOTER_LEN = len(_FOOTER_MAGIC) + hashlib.sha256().digest_size

_ALIGN = 64

_FALSEY = ("off", "0", "no", "false", "disabled")


def table_cache_enabled() -> bool:
    """True unless disabled via ``REPRO_TABLE_CACHE=off`` (per call)."""
    return os.environ.get("REPRO_TABLE_CACHE", "").strip().lower() \
        not in _FALSEY


class TableCacheStats:
    """Process-wide table-cache counters (``--cache-stats``).

    ``hits`` are mmap loads, ``misses`` are lookups that found no
    usable file, ``builds`` count the bisection builds (after a miss,
    or with the cache disabled), ``invalidations`` count corrupt files
    dropped on read, and
    ``write_errors`` count stores the disk refused.  The
    snapshot/delta/absorb trio mirrors :class:`.matcache.MatrixCache`
    so pool workers report their traffic to the parent.
    """

    __slots__ = ("hits", "misses", "builds", "invalidations",
                 "write_errors")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.invalidations = 0
        self.write_errors = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "builds": self.builds,
                "invalidations": self.invalidations,
                "write_errors": self.write_errors}

    def snapshot(self) -> tuple[int, int, int, int, int]:
        return (self.hits, self.misses, self.builds, self.invalidations,
                self.write_errors)

    def delta_since(self, snap) -> dict[str, int]:
        return {"hits": self.hits - snap[0],
                "misses": self.misses - snap[1],
                "builds": self.builds - snap[2],
                "invalidations": self.invalidations - snap[3],
                "write_errors": self.write_errors - snap[4]}

    def absorb(self, delta: dict[str, int] | None) -> None:
        if not delta:
            return
        self.hits += int(delta.get("hits", 0))
        self.misses += int(delta.get("misses", 0))
        self.builds += int(delta.get("builds", 0))
        self.invalidations += int(delta.get("invalidations", 0))
        self.write_errors += int(delta.get("write_errors", 0))

    def __repr__(self) -> str:
        return (f"<TableCacheStats {self.hits} hits / "
                f"{self.hits + self.misses} lookups, "
                f"{self.builds} builds>")


_STATS = TableCacheStats()


def table_stats() -> TableCacheStats:
    """The live process-wide table-cache counters."""
    return _STATS


def table_cache_dir() -> str:
    """``results/.cache/tables`` under the *current* results dir."""
    from ..analysis.reporting import results_dir
    from ..experiments.cache import CACHE_DIR_NAME
    return os.path.join(results_dir(), CACHE_DIR_NAME, TABLE_DIR_NAME)


def entry_path(kind: str, key: Hashable) -> str:
    """The file a (kind, format key) pair serializes to.

    The code fingerprint joins the hash, so any source edit makes every
    old file unreachable — conservative, like the result cache, and it
    can never serve a table built by different table-construction code.
    """
    from ..experiments.cache import code_fingerprint
    digest = hashlib.sha256(
        f"{kind}\n{key!r}\n{code_fingerprint()}".encode()).hexdigest()
    return os.path.join(table_cache_dir(), digest + SUFFIX)


def store_arrays(kind: str, key: Hashable, fmt_name: str,
                 arrays: dict[str, np.ndarray]) -> str | None:
    """Persist named arrays for (kind, key); returns the path or None.

    A full disk (``ENOSPC``/``EDQUOT``) is tolerated — the table keeps
    working from memory, only persistence is skipped.
    """
    if not table_cache_enabled():
        return None
    from ..resilience.atomic import atomic_open
    metas = []
    offset = 0
    blobs = []
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        metas.append({"name": name, "dtype": arr.dtype.str,
                      "shape": list(arr.shape), "offset": None,
                      "nbytes": arr.nbytes})
        blobs.append(arr.tobytes())
    header_stub = json.dumps({"version": 1, "kind": kind,
                              "format": fmt_name, "key": repr(key),
                              "arrays": metas}, sort_keys=True)
    # reserve generous room for the offsets we fill in below, then pad
    # the header line itself to an aligned length
    head_len = len(header_stub.encode()) + 16 * len(metas) + _ALIGN
    head_len += (-head_len - 1) % _ALIGN + 1  # +1 for the newline
    offset = head_len
    for meta, blob in zip(metas, blobs):
        meta["offset"] = offset
        offset += len(blob) + (-len(blob)) % _ALIGN
    header = json.dumps({"version": 1, "kind": kind, "format": fmt_name,
                         "key": repr(key), "arrays": metas},
                        sort_keys=True).encode()
    header = header + b" " * (head_len - 1 - len(header)) + b"\n"
    digest = hashlib.sha256()
    path = entry_path(kind, key)
    try:
        with atomic_open(path, "wb") as fh:
            digest.update(header)
            fh.write(header)
            for blob in blobs:
                pad = b"\0" * ((-len(blob)) % _ALIGN)
                digest.update(blob)
                digest.update(pad)
                fh.write(blob)
                fh.write(pad)
            fh.write(_FOOTER_MAGIC)
            fh.write(digest.digest())
    except OSError as exc:
        if exc.errno in (errno.ENOSPC, errno.EDQUOT):
            _STATS.write_errors += 1
            return None
        raise
    return path


def _read_header(path: str) -> dict | None:
    """Parse just the JSON header line (no checksum; scanning only)."""
    try:
        with open(path, "rb") as fh:
            line = fh.readline(1 << 20)
        return json.loads(line.decode())
    except (OSError, ValueError):
        return None


def load_arrays(kind: str, key: Hashable) -> dict[str, np.ndarray] | None:
    """mmap-load the arrays for (kind, key), or None on miss.

    The whole file is checksum-verified against the footer before any
    byte is trusted; a corrupt file is deleted (counted as an
    invalidation) so the caller rebuilds and re-stores it.
    """
    if not table_cache_enabled():
        return None
    path = entry_path(kind, key)
    try:
        with open(path, "rb") as fh:
            mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
    except (OSError, ValueError):
        _STATS.misses += 1
        return None
    try:
        if (len(mm) <= _FOOTER_LEN
                or mm[-_FOOTER_LEN:-32] != _FOOTER_MAGIC
                or hashlib.sha256(
                    memoryview(mm)[:len(mm) - _FOOTER_LEN]).digest()
                != mm[-32:]):
            raise ValueError("table cache file truncated or corrupt "
                             "(checksum footer mismatch)")
        head = json.loads(mm[:mm.find(b"\n")].decode())
        if head.get("kind") != kind or head.get("key") != repr(key):
            raise ValueError("table cache file does not match its key")
        out = {}
        for meta in head["arrays"]:
            arr = np.frombuffer(mm, dtype=np.dtype(meta["dtype"]),
                                count=int(np.prod(meta["shape"],
                                                  dtype=np.int64)),
                                offset=meta["offset"])
            out[meta["name"]] = arr.reshape(meta["shape"])
    except Exception:
        out = None  # release any frombuffer views before closing
        with contextlib.suppress(BufferError):
            mm.close()
        with contextlib.suppress(OSError):
            os.unlink(path)
        _STATS.misses += 1
        _STATS.invalidations += 1
        return None
    # the arrays keep `mm` alive through their .base chain; the pages
    # are shared read-only across every process mapping this file
    _STATS.hits += 1
    return out


def preload_cached() -> int:
    """Warm every table this machine has cached for the current code.

    Scans the table directory, resolves each file's format by registry
    name, and — only when the file is the *current* entry for that
    format (same key, same code fingerprint) — triggers the format's
    table accessor, which takes the mmap hit path.  Stale or alien
    files are skipped, never built.  Returns the number of tables
    warmed; safe to call from worker startup (all failures are
    non-fatal).
    """
    from .lut import lut_enabled
    if not (table_cache_enabled() and lut_enabled()):
        return 0
    try:
        names = sorted(os.listdir(table_cache_dir()))
    except OSError:
        return 0
    from ..formats.registry import get_format
    warmed = 0
    for fname in names:
        if not fname.endswith(SUFFIX):
            continue
        path = os.path.join(table_cache_dir(), fname)
        head = _read_header(path)
        if head is None:
            continue
        try:
            fmt = get_format(head.get("format", ""))
        except Exception:
            continue
        kind = head.get("kind")
        if entry_path(kind, fmt._key()) != path:
            continue  # stale fingerprint or foreign key: leave it be
        try:
            if kind == "dense" and hasattr(fmt, "_lut_table"):
                fmt._lut_table()
            elif kind == "two_level" and hasattr(fmt, "_two_level_table"):
                fmt._two_level_table()
            else:
                continue
            warmed += 1
        except Exception:  # pragma: no cover - defensive: never block a worker
            continue
    return warmed


def clear_table_cache() -> int:
    """Delete every cached table file; returns the number removed."""
    removed = 0
    try:
        names = os.listdir(table_cache_dir())
    except OSError:
        return 0
    for fname in names:
        if fname.endswith(SUFFIX):
            with contextlib.suppress(OSError):
                os.unlink(os.path.join(table_cache_dir(), fname))
                removed += 1
    return removed
