"""``repro.kernels`` — the performance layer under the numerics.

Coordinated attacks on intra-cell cost, all bit-identical to the
reference kernels they accelerate (the golden-digest and oracle
conformance suites hold them to that):

:mod:`repro.kernels.lut`
    Table-driven rounding: for narrow formats (≤ 2¹⁶ patterns) a sorted
    representable-value table plus bisection-probed decision boundaries,
    rounding via ``np.searchsorted`` instead of the ~20-op bitwise
    chain; for posit32/fp32-class widths a two-level exponent-bucketed
    table (:class:`lut.TwoLevelTable`).  See :func:`lut.rounding_table`
    and :func:`lut.two_level_table`.
:mod:`repro.kernels.tabcache`
    Persistent on-disk table store under ``results/.cache/tables/``:
    the dense and two-level LUT arrays are serialized with a checksum
    footer and mmap-loaded back, keyed by (format key, code
    fingerprint), so pool workers and the long-lived service build
    posit32/takum32 tables once per machine instead of once per
    process.  ``REPRO_TABLE_CACHE=off`` opts out.
:mod:`repro.kernels.gemm`
    Blocked and batched rounded GEMM: the rank-1 term cube is tiled
    into (i, j) panels quantized once each, preserving the summation
    schedule bit-for-bit.  ``REPRO_GEMM_BLOCKED=off`` opts out.
:mod:`repro.kernels.segment`
    The compact CSR matvec reduction: a segmented rounded pairwise
    fold over the O(nnz) product array reproducing the padded ELL tree
    bit-for-bit, so skewed matrices stop paying the (n, k) scatter.
    ``REPRO_SPARSE=ell|segmented|auto`` picks the route.
:mod:`repro.kernels.scratch`
    Shape-keyed, thread-local pools of reusable ndarray buffers, so the
    quantize pipeline (``posit_round``, ``FPContext``, the summation
    folds) stops churning temporaries on every small-vector CG step.
:mod:`repro.kernels.matcache`
    A per-worker LRU over derived matrices (rescaled systems, ELL
    conversions, Higham scalings) so sweep cells sharing a matrix stop
    re-deriving it; hit/miss counts surface through the telemetry
    manifest.  ``REPRO_MATRIX_CACHE=off`` disables it.
:mod:`repro.kernels.bench`
    The kernel microbenchmark CLI behind ``benchmarks/BENCH_kernels.json``
    (``python -m repro.kernels.bench``).

The package ``__init__`` is deliberately lazy: :mod:`repro.arith.context`
imports :mod:`repro.kernels.scratch` while :mod:`repro.kernels.matcache`
imports :mod:`repro.telemetry.trace` (which imports the context back), so
eager submodule imports here would create a cycle.
"""

from __future__ import annotations

__all__ = ["bench", "gemm", "lut", "matcache", "scratch", "segment",
           "tabcache"]


def __getattr__(name: str):
    if name in __all__:
        import importlib
        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
