"""Reusable ndarray scratch buffers for the quantize pipeline.

The emulated-arithmetic hot path ("compute in float64, round after every
op") spends a surprising share of its time in ``np.empty``/refcount
churn: a single CG iteration on a 24-vector allocates dozens of
temporaries that live for microseconds.  A :class:`ScratchPool` hands
those call sites preallocated buffers keyed by ``(shape, dtype)``.

Contract
--------
* Pools are **module-private**: each consumer (``posit.rounding``,
  ``arith.context``, ``arith.summation``) owns its own pool so buffers
  can never alias across layers.
* ``take`` / ``give`` are LIFO per key and safe under reentrancy — a
  taken buffer is removed from the pool, so a nested call simply
  allocates a fresh one.
* Buffers are per-thread (``threading.local``), so two threads never
  share scratch.
* Rounders and context methods **always return freshly-allocated
  arrays**; scratch buffers only ever hold intermediate values and are
  given back before the call returns.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["ScratchPool"]

#: retained buffers per (shape, dtype) key — bounds pool memory while
#: covering the deepest legitimate nesting (context op → fold → rounder)
_MAX_PER_KEY = 8


class ScratchPool:
    """Thread-local pools of reusable ndarray buffers.

    Usage::

        buf = pool.take(x.shape, np.float64)
        try:
            np.multiply(x, y, out=buf)
            result = rounder(buf)          # rounder returns a fresh array
        finally:
            pool.give(buf)
    """

    def __init__(self) -> None:
        self._local = threading.local()

    def _buffers(self) -> dict:
        buffers = getattr(self._local, "buffers", None)
        if buffers is None:
            buffers = {}
            self._local.buffers = buffers
        return buffers

    def take(self, shape: tuple, dtype=np.float64) -> np.ndarray:
        """A writable buffer of the given shape/dtype, contents arbitrary."""
        stack = self._buffers().get((shape, np.dtype(dtype).char))
        if stack:
            return stack.pop()
        return np.empty(shape, dtype=dtype)

    def give(self, arr: np.ndarray) -> None:
        """Return a buffer obtained from :meth:`take` to the pool."""
        key = (arr.shape, arr.dtype.char)
        stack = self._buffers().setdefault(key, [])
        if len(stack) < _MAX_PER_KEY:
            stack.append(arr)

    def clear(self) -> None:
        """Drop every retained buffer (tests / memory pressure)."""
        self._buffers().clear()
