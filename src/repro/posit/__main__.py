"""Posit inspector CLI: ``python -m repro.posit``.

Three modes:

* ``python -m repro.posit 3.14159 --nbits 16 --es 1`` — encode a value
  and print its field-by-field anatomy, rounding error and neighbours;
* ``python -m repro.posit --pattern 0x5922 --nbits 16 --es 1`` — decode
  a raw bit pattern;
* ``python -m repro.posit --table --nbits 6 --es 1`` — dump the whole
  value table of a small format.
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction

from .codec import decode_fraction, encode, posit_config
from .scalar import Posit


def _field_view(p: Posit) -> str:
    cfg = p.config
    bits = p.bit_string()
    if p.is_nar or p.is_zero:
        return f"  bits: {bits}  ({'NaR' if p.is_nar else 'zero'})"
    f = p.fields()
    # reconstruct field widths from the regime run
    from .codec import regime_length
    r_len = regime_length(f["k"], cfg)
    e_bits = min(cfg.es, cfg.nbits - 1 - r_len)
    sign_b = bits[0]
    regime_b = bits[1:1 + r_len]
    exp_b = bits[1 + r_len:1 + r_len + e_bits]
    frac_b = bits[1 + r_len + e_bits:]
    lines = [
        f"  bits:     {bits}",
        f"  fields:   sign={sign_b}  regime={regime_b} (k={f['k']})"
        + (f"  exp={exp_b} (e={f['exponent']})" if e_bits else
           "  exp=<none>")
        + (f"  frac={frac_b}" if frac_b else "  frac=<none>"),
        f"  value =   (-1)^{f['sign']} * {cfg.useed}^{f['k']} * "
        f"2^{f['exponent']} * (1 + {f['fraction']}/"
        f"{1 << f['fraction_bits']})",
        f"  exact =   {p.as_fraction()}  =  {float(p)!r}",
        f"  scale 2^{f['scale']}, {f['fraction_bits']} fraction bits "
        f"stored here",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.posit",
        description="Inspect posit encodings.")
    parser.add_argument("value", nargs="?", type=float,
                        help="real value to encode")
    parser.add_argument("--nbits", type=int, default=16)
    parser.add_argument("--es", type=int, default=1)
    parser.add_argument("--pattern", type=lambda s: int(s, 0),
                        help="decode this raw pattern instead")
    parser.add_argument("--table", action="store_true",
                        help="print every value of the format "
                             "(small nbits only)")
    args = parser.parse_args(argv)
    cfg = posit_config(args.nbits, args.es)

    if args.table:
        if args.nbits > 12:
            parser.error("--table only for nbits <= 12")
        print(f"# {cfg}: useed={cfg.useed}, maxpos={float(cfg.maxpos):g},"
              f" minpos={float(cfg.minpos):g}")
        from .tables import value_table
        try:
            for pattern, value in value_table(args.nbits, args.es):
                print(f"{pattern:0{args.nbits}b}  {float(value)!r}")
        except BrokenPipeError:  # e.g. piped into `head`
            sys.stderr.close()
        return 0

    if args.pattern is not None:
        p = Posit.from_pattern(args.pattern, args.nbits, args.es)
        print(f"{cfg} pattern 0x{args.pattern:0{(args.nbits + 3) // 4}x}:")
        print(_field_view(p))
        return 0

    if args.value is None:
        parser.error("provide a value, --pattern or --table")

    p = Posit(args.value, args.nbits, args.es)
    print(f"{args.value!r} -> {cfg}:")
    print(_field_view(p))
    if not (p.is_nar or p.is_zero):
        err = Fraction(args.value) - p.as_fraction()
        rel = abs(err) / abs(Fraction(args.value)) \
            if args.value else Fraction(0)
        print(f"  rounding error: {float(err):.3e} "
              f"(relative {float(rel):.3e})")
        below = Posit.from_pattern(p.pattern - 1, args.nbits, args.es)
        above = Posit.from_pattern(p.pattern + 1, args.nbits, args.es)
        if not below.is_nar:
            print(f"  neighbour below: {float(below)!r}")
        if not above.is_nar:
            print(f"  neighbour above: {float(above)!r}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
