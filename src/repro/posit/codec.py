"""Bit-exact posit encode/decode for arbitrary ``(nbits, es)``.

This module is the reference implementation of the posit binary format
(Gustafson & Yonemoto 2017; Posit Standard 2022 rounding semantics) used
throughout the library:

* :func:`encode` maps an exact real value (``fractions.Fraction``, ``int``
  or ``float``) to the *n*-bit posit pattern that the standard's
  round-to-nearest / ties-to-even rule selects.  All arithmetic is done
  with unbounded Python integers and rationals, so the result is exact —
  this plays the role the authors' GNU-GMP ground truth played for their
  C++ library.
* :func:`decode_fraction` / :func:`decode_float` map a pattern back to its
  exact value.

Pattern conventions
-------------------
Patterns are unsigned integers in ``[0, 2**nbits)``.  Pattern ``0`` is the
posit zero; pattern ``2**(nbits-1)`` is NaR ("Not a Real").  Negative
posits are the two's complement of their absolute value's pattern, which
makes the signed-integer ordering of patterns identical to the numeric
ordering of the values they encode — the property all the fast rounding
paths in :mod:`repro.posit.rounding` rely on.

Rounding rule
-------------
Values are rounded to the nearest representable posit; ties go to the
pattern with an even integer representation.  Because the encoding is
monotone with locally uniform granularity, "nearest pattern" and "nearest
value" coincide.  Two saturation rules depart from IEEE behaviour:
``0 < |x| <= minpos`` rounds to ±minpos (never to zero) and
``|x| >= maxpos`` rounds to ±maxpos (never to NaR).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache
from typing import Iterator, Union

from ..errors import InvalidPositConfig, NaRError

__all__ = [
    "PositConfig",
    "posit_config",
    "encode",
    "decode_fraction",
    "decode_float",
    "round_to_nearest",
    "negate",
    "pattern_abs",
    "is_negative_pattern",
    "all_patterns",
    "floor_log2",
    "regime_length",
    "fraction_bits_at_scale",
]

Real = Union[int, float, Fraction]


def floor_log2(value: Fraction) -> int:
    """Exact ``floor(log2(value))`` for a positive rational."""
    if value <= 0:
        raise ValueError("floor_log2 requires a positive value")
    num, den = value.numerator, value.denominator
    # First guess from bit lengths, then correct by at most one.
    s = num.bit_length() - den.bit_length()
    # value >= 2**s  <=>  num * 2**-s >= den
    if s >= 0:
        if num < den << s:
            s -= 1
    else:
        if num << (-s) < den:
            s -= 1
    return s


@dataclass(frozen=True)
class PositConfig:
    """Static properties of a posit format ``(nbits, es)``.

    The dataclass is hashable and cached via :func:`posit_config`; treat
    instances as interned singletons.
    """

    nbits: int
    es: int

    def __post_init__(self) -> None:
        if self.nbits < 2:
            raise InvalidPositConfig(f"nbits must be >= 2, got {self.nbits}")
        if self.es < 0:
            raise InvalidPositConfig(f"es must be >= 0, got {self.es}")
        if self.es > 8:
            raise InvalidPositConfig(
                f"es={self.es} gives a useed of 2**{2 ** self.es}; values "
                "beyond es=8 are not meaningful and overflow fast paths")

    # -- derived constants -------------------------------------------------
    @property
    def useed(self) -> int:
        """``2**(2**es)`` — the regime step factor (paper Eq. 3)."""
        return 1 << (1 << self.es)

    @property
    def npat(self) -> int:
        """Number of bit patterns, ``2**nbits``."""
        return 1 << self.nbits

    @property
    def nar_pattern(self) -> int:
        """Pattern of NaR: sign bit set, all other bits clear."""
        return 1 << (self.nbits - 1)

    @property
    def maxpos_pattern(self) -> int:
        """Pattern of the largest positive posit (all ones after the sign)."""
        return (1 << (self.nbits - 1)) - 1

    @property
    def minpos_pattern(self) -> int:
        """Pattern of the smallest positive posit."""
        return 1

    @property
    def max_scale(self) -> int:
        """Scale (base-2 exponent) of maxpos: ``(nbits-2) * 2**es``."""
        return (self.nbits - 2) << self.es

    @property
    def min_scale(self) -> int:
        """Scale of minpos (= -max_scale)."""
        return -self.max_scale

    @property
    def maxpos(self) -> Fraction:
        """Largest representable value, ``useed**(nbits-2)``, exactly."""
        return Fraction(1 << self.max_scale)

    @property
    def minpos(self) -> Fraction:
        """Smallest positive representable value, exactly."""
        return Fraction(1, 1 << self.max_scale)

    @property
    def max_fraction_bits(self) -> int:
        """Fraction bits available in the widest-fraction region (|x| near 1)."""
        return max(0, self.nbits - 3 - self.es)

    @property
    def eps_at_one(self) -> Fraction:
        """Spacing of posits just above 1 (the golden-zone ulp)."""
        return Fraction(1, 1 << self.max_fraction_bits)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"Posit({self.nbits}, {self.es})"


@lru_cache(maxsize=None)
def posit_config(nbits: int, es: int) -> PositConfig:
    """Interned accessor for :class:`PositConfig` instances."""
    return PositConfig(nbits, es)


def regime_length(k: int, cfg: PositConfig) -> int:
    """Length in bits of the regime field for run value *k* (incl. terminator).

    The terminator bit is absent when the run fills the whole pattern.
    """
    raw = k + 2 if k >= 0 else -k + 1
    return min(raw, cfg.nbits - 1)


def fraction_bits_at_scale(scale: int, cfg: PositConfig) -> int:
    """Number of stored fraction bits for a value with base-2 *scale*.

    This is the quantity plotted in the paper's Fig. 5 histograms (via the
    difference against Float32's constant 23 bits).  Scales outside the
    representable range return 0.
    """
    if scale > cfg.max_scale or scale < cfg.min_scale:
        return 0
    k = scale >> cfg.es
    avail = cfg.nbits - 1 - regime_length(k, cfg)
    return max(0, avail - cfg.es)


# ---------------------------------------------------------------------------
# Encode
# ---------------------------------------------------------------------------

def _to_fraction(value: Real) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            raise ValueError("NaN/inf must be handled by the caller (NaR)")
        return Fraction(value)  # exact
    raise TypeError(f"unsupported value type {type(value)!r}")


def encode(value: Real, cfg: PositConfig) -> int:
    """Round an exact real *value* to its nearest posit pattern.

    ``float('nan')`` and infinities map to the NaR pattern.  Zero maps to
    pattern ``0``.  Everything else follows the Posit Standard rounding
    rules described in the module docstring.
    """
    if isinstance(value, float) and (math.isnan(value) or math.isinf(value)):
        return cfg.nar_pattern
    q = _to_fraction(value)
    if q == 0:
        return 0
    negative = q < 0
    pattern = _encode_magnitude(-q if negative else q, cfg)
    if negative:
        pattern = (cfg.npat - pattern) & (cfg.npat - 1)
    return pattern


def _encode_magnitude(q: Fraction, cfg: PositConfig) -> int:
    """Encode a positive rational magnitude; returns a pattern in [1, maxpos]."""
    if q >= cfg.maxpos:
        return cfg.maxpos_pattern
    if q <= cfg.minpos:
        return cfg.minpos_pattern

    s = floor_log2(q)  # q = f * 2**s with f in [1, 2)
    k = s >> cfg.es  # floor division (Python >> floors for negatives)
    e = s - (k << cfg.es)  # in [0, 2**es)
    # After the clamps above: -(nbits-2) < scale-position => avail >= 0.
    r_len = regime_length(k, cfg)
    keep = cfg.nbits - 1 - r_len  # payload bits actually stored
    if k >= 0:
        regime_pattern = ((1 << (k + 1)) - 1) << 1  # k+1 ones then a zero
    else:
        regime_pattern = 1  # -k zeros then a one

    frac = q / (1 << s) - 1 if s >= 0 else q * (1 << -s) - 1
    # Real-valued "infinite precision" pattern below the regime:
    #   payload = (e + frac) * 2**(keep - es), in [0, 2**keep)
    payload = (e + frac) * Fraction(1 << keep, 1 << cfg.es) \
        if keep >= cfg.es else (e + frac) / Fraction(1 << (cfg.es - keep))
    exact = (regime_pattern << keep) + payload

    pattern = _round_half_even_fraction(exact)
    # Rounding up may step past maxpos's neighbour; clamp (never to NaR).
    if pattern > cfg.maxpos_pattern:
        pattern = cfg.maxpos_pattern
    if pattern < 1:  # cannot happen by construction, defensive
        pattern = 1
    return pattern


def _round_half_even_fraction(x: Fraction) -> int:
    """Round a non-negative rational to the nearest integer, ties to even."""
    floor = x.numerator // x.denominator
    rem = x - floor
    half = Fraction(1, 2)
    if rem > half:
        return floor + 1
    if rem < half:
        return floor
    return floor + (floor & 1)


# ---------------------------------------------------------------------------
# Decode
# ---------------------------------------------------------------------------

def is_negative_pattern(pattern: int, cfg: PositConfig) -> bool:
    """True when *pattern* encodes a negative value (sign bit set, not NaR)."""
    return pattern > cfg.nar_pattern


def pattern_abs(pattern: int, cfg: PositConfig) -> int:
    """Pattern of ``|value|`` (two's complement negation when negative)."""
    if is_negative_pattern(pattern, cfg):
        return (cfg.npat - pattern) & (cfg.npat - 1)
    return pattern


def negate(pattern: int, cfg: PositConfig) -> int:
    """Pattern of the negated value.  Zero and NaR are their own negations."""
    if pattern == 0 or pattern == cfg.nar_pattern:
        return pattern
    return (cfg.npat - pattern) & (cfg.npat - 1)


def _decode_fields(pattern: int, cfg: PositConfig) -> tuple[int, int, int, int]:
    """Return ``(sign, scale, frac_numerator, frac_bits)`` for a pattern.

    ``value = (-1)**sign * 2**scale * (1 + frac_numerator / 2**frac_bits)``.
    Pattern must not be 0 or NaR.
    """
    npos = cfg.nbits - 1
    sign = 1 if is_negative_pattern(pattern, cfg) else 0
    mag = pattern_abs(pattern, cfg)

    # Regime: run of identical bits starting at the top of the npos field.
    first = (mag >> (npos - 1)) & 1
    run = 0
    for i in range(npos - 1, -1, -1):
        if (mag >> i) & 1 == first:
            run += 1
        else:
            break
    k = run - 1 if first == 1 else -run
    r_len = min(run + 1, npos)  # terminator absent if run fills the field
    w = npos - r_len  # payload width
    payload = mag & ((1 << w) - 1) if w > 0 else 0

    e_bits = min(cfg.es, w)
    if e_bits > 0:
        e = (payload >> (w - e_bits)) << (cfg.es - e_bits)
    else:
        e = 0
    f_bits = w - e_bits
    frac = payload & ((1 << f_bits) - 1) if f_bits > 0 else 0

    scale = (k << cfg.es) + e
    return sign, scale, frac, f_bits


def decode_fraction(pattern: int, cfg: PositConfig) -> Fraction:
    """Exact rational value of *pattern*.

    Raises :class:`NaRError` for the NaR pattern — NaR has no real value.
    """
    pattern &= cfg.npat - 1
    if pattern == 0:
        return Fraction(0)
    if pattern == cfg.nar_pattern:
        raise NaRError("NaR has no real value")
    sign, scale, frac, f_bits = _decode_fields(pattern, cfg)
    significand = Fraction((1 << f_bits) + frac, 1 << f_bits)
    if scale >= 0:
        value = significand * (1 << scale)
    else:
        value = significand / (1 << -scale)
    return -value if sign else value


def decode_float(pattern: int, cfg: PositConfig) -> float:
    """Value of *pattern* as a float (NaR decodes to NaN).

    For every posit with ``nbits <= 32`` and ``es <= 3`` the value is
    exactly representable in IEEE double precision, so this conversion is
    lossless for all formats the paper studies.
    """
    pattern &= cfg.npat - 1
    if pattern == 0:
        return 0.0
    if pattern == cfg.nar_pattern:
        return math.nan
    sign, scale, frac, f_bits = _decode_fields(pattern, cfg)
    significand = 1.0 + frac / float(1 << f_bits) if f_bits else 1.0
    value = math.ldexp(significand, scale)
    return -value if sign else value


def round_to_nearest(value: Real, cfg: PositConfig) -> float:
    """Quantize *value* to the nearest posit and return it as a float.

    This is the scalar reference for :func:`repro.posit.rounding.posit_round`.
    """
    return decode_float(encode(value, cfg), cfg)


def all_patterns(cfg: PositConfig, include_nar: bool = False) -> Iterator[int]:
    """Iterate every pattern of the format (optionally including NaR).

    Intended for exhaustive testing and for building the value tables of
    :mod:`repro.posit.tables`; only sensible for small ``nbits``.
    """
    for p in range(cfg.npat):
        if p == cfg.nar_pattern and not include_nar:
            continue
        yield p
