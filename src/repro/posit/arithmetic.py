"""Exact, correctly-rounded scalar posit arithmetic.

Every operation computes the mathematically exact result as a rational
(``fractions.Fraction`` — unbounded precision, playing the role of the
GNU GMP ground truth the paper validated against) and rounds it **once**
to the destination posit format.  This gives correctly-rounded
``+ - * /`` and ``sqrt`` by construction, which is exactly the contract
hardware posit units provide.

These routines operate on *patterns* (integers); the friendlier
operator-overloading interface lives in :mod:`repro.posit.scalar`.

NaR propagation follows the posit standard: any operation with a NaR
input yields NaR; ``x / 0`` for ``x != 0`` yields NaR; ``0 / 0`` yields
NaR; ``sqrt`` of a negative value yields NaR.
"""

from __future__ import annotations

import math
from fractions import Fraction

from .codec import PositConfig, decode_fraction, encode, floor_log2

__all__ = [
    "add_patterns",
    "sub_patterns",
    "mul_patterns",
    "div_patterns",
    "neg_pattern",
    "sqrt_pattern",
    "fma_patterns",
    "compare_patterns",
    "sqrt_fraction_rounded",
]


def _is_nar(p: int, cfg: PositConfig) -> bool:
    return (p & (cfg.npat - 1)) == cfg.nar_pattern


def add_patterns(a: int, b: int, cfg: PositConfig) -> int:
    """Correctly-rounded posit addition on patterns."""
    if _is_nar(a, cfg) or _is_nar(b, cfg):
        return cfg.nar_pattern
    return encode(decode_fraction(a, cfg) + decode_fraction(b, cfg), cfg)


def sub_patterns(a: int, b: int, cfg: PositConfig) -> int:
    """Correctly-rounded posit subtraction on patterns."""
    if _is_nar(a, cfg) or _is_nar(b, cfg):
        return cfg.nar_pattern
    return encode(decode_fraction(a, cfg) - decode_fraction(b, cfg), cfg)


def mul_patterns(a: int, b: int, cfg: PositConfig) -> int:
    """Correctly-rounded posit multiplication on patterns."""
    if _is_nar(a, cfg) or _is_nar(b, cfg):
        return cfg.nar_pattern
    return encode(decode_fraction(a, cfg) * decode_fraction(b, cfg), cfg)


def div_patterns(a: int, b: int, cfg: PositConfig) -> int:
    """Correctly-rounded posit division on patterns (x/0 is NaR)."""
    if _is_nar(a, cfg) or _is_nar(b, cfg):
        return cfg.nar_pattern
    db = decode_fraction(b, cfg)
    if db == 0:
        return cfg.nar_pattern
    return encode(decode_fraction(a, cfg) / db, cfg)


def neg_pattern(a: int, cfg: PositConfig) -> int:
    """Exact posit negation (two's complement of the pattern)."""
    a &= cfg.npat - 1
    if a == 0 or a == cfg.nar_pattern:
        return a
    return (cfg.npat - a) & (cfg.npat - 1)


def fma_patterns(a: int, b: int, c: int, cfg: PositConfig) -> int:
    """Fused multiply-add ``a*b + c`` with a single final rounding.

    The paper's experiments deliberately avoid fused operations; this is
    provided for the quire/fused-op ablation study.
    """
    if _is_nar(a, cfg) or _is_nar(b, cfg) or _is_nar(c, cfg):
        return cfg.nar_pattern
    exact = decode_fraction(a, cfg) * decode_fraction(b, cfg) \
        + decode_fraction(c, cfg)
    return encode(exact, cfg)


def compare_patterns(a: int, b: int, cfg: PositConfig) -> int:
    """Three-way compare of posit values: -1, 0 or +1.

    Implemented as a signed-integer compare of the patterns — the posit
    encoding is designed so this is valid (NaR compares below everything,
    matching the standard's total order).
    """
    mask = cfg.npat - 1
    half = cfg.nar_pattern
    sa = (a & mask) - cfg.npat if (a & mask) >= half else (a & mask)
    sb = (b & mask) - cfg.npat if (b & mask) >= half else (b & mask)
    return (sa > sb) - (sa < sb)


def sqrt_fraction_rounded(x: Fraction, extra_bits: int = 80) -> Fraction:
    """A rational ``r`` with ``|r - sqrt(x)| < 2**(floor_log2(sqrt(x)) - extra_bits)``.

    Uses the integer ``math.isqrt`` on a scaled numerator so the result
    carries *extra_bits* correct significand bits — enough to round
    correctly to any posit the library supports (far fewer bits), except
    in the measure-zero case of sqrt(x) being exactly representable,
    which is detected and returned exactly.
    """
    if x < 0:
        raise ValueError("sqrt of negative value")
    if x == 0:
        return Fraction(0)
    num, den = x.numerator, x.denominator
    # sqrt(num/den) = sqrt(num*den) / den
    radicand = num * den
    root = math.isqrt(radicand)
    if root * root == radicand:
        return Fraction(root, den)  # exact
    # widen: sqrt(radicand) = sqrt(radicand * 4**w) / 2**w
    w = extra_bits
    wide = math.isqrt(radicand << (2 * w))
    return Fraction(wide, den << w)


def sqrt_pattern(a: int, cfg: PositConfig) -> int:
    """Correctly-rounded posit square root (negative input → NaR).

    Correct rounding is ensured by computing ~80 extra significand bits;
    since posit fractions carry at most ``nbits - 3`` bits, the rounding
    decision cannot straddle the approximation error unless the true root
    is exactly a representable midpoint, which the exact-square check in
    :func:`sqrt_fraction_rounded` covers.
    """
    if _is_nar(a, cfg):
        return cfg.nar_pattern
    da = decode_fraction(a, cfg)
    if da < 0:
        return cfg.nar_pattern
    if da == 0:
        return 0
    approx = sqrt_fraction_rounded(da, extra_bits=cfg.nbits + 64)
    return encode(approx, cfg)
