"""Packed binary storage for posit arrays.

A posit's whole point is memory efficiency: a posit(16,1) vector should
occupy 16 bits per element on disk and on the wire, not the 64 of its
float64 carrier.  This module packs carrier arrays to their true
storage width and back:

* :func:`pack_posit_array` / :func:`unpack_posit_array` — NumPy buffers
  of the format's natural width (8/16/32/64-bit patterns; other widths
  are bit-packed tightly);
* :func:`save_posit_array` / :func:`load_posit_array` — a small
  self-describing file container (magic, nbits, es, count, patterns).

Round-tripping quantizes through the format once — by construction,
``unpack(pack(x)) == posit_round(x)``.
"""

from __future__ import annotations

import io as _io
import struct

import numpy as np

from ..errors import PositError
from .codec import PositConfig, posit_config
from .rounding import posit_decode_array, posit_encode_array

__all__ = ["pack_posit_array", "unpack_posit_array",
           "save_posit_array", "load_posit_array"]

_MAGIC = b"RPST"
_VERSION = 1

_NATURAL_DTYPES = {8: np.uint8, 16: np.uint16, 32: np.uint32,
                   64: np.uint64}


def pack_posit_array(x: np.ndarray, nbits: int, es: int) -> bytes:
    """Quantize *x* to posit(nbits, es) and pack the patterns tightly.

    Returns raw little-endian bytes: one pattern per ``nbits`` bits (a
    natural integer width when nbits ∈ {8, 16, 32}, otherwise a dense
    bitstream padded to a byte boundary at the end).
    """
    cfg = posit_config(nbits, es)
    arr = np.atleast_1d(np.asarray(x, dtype=np.float64)).ravel()
    patterns = posit_encode_array(arr, cfg)
    if nbits in _NATURAL_DTYPES:
        return patterns.astype(f"<u{nbits // 8}").tobytes()
    # odd widths: dense bitstream, MSB-first per value
    bits = np.zeros(arr.size * nbits, dtype=np.uint8)
    for i, shift in enumerate(range(nbits - 1, -1, -1)):
        bits[i::nbits] = (patterns >> shift) & 1
    return np.packbits(bits).tobytes()


def unpack_posit_array(payload: bytes, count: int, nbits: int,
                       es: int) -> np.ndarray:
    """Unpack *count* posit(nbits, es) patterns into float64 values."""
    cfg = posit_config(nbits, es)
    if nbits in _NATURAL_DTYPES:
        expected = count * (nbits // 8)
        if len(payload) < expected:
            raise PositError(f"payload too short: {len(payload)} bytes "
                             f"for {count} posit{nbits} values")
        patterns = np.frombuffer(payload[:expected],
                                 dtype=f"<u{nbits // 8}") \
            .astype(np.int64)
    else:
        need_bits = count * nbits
        raw = np.frombuffer(payload, dtype=np.uint8)
        bits = np.unpackbits(raw)
        if bits.size < need_bits:
            raise PositError(f"payload too short: {bits.size} bits "
                             f"for {count} posit{nbits} values")
        bits = bits[:need_bits].astype(np.int64)
        patterns = np.zeros(count, dtype=np.int64)
        for i, shift in enumerate(range(nbits - 1, -1, -1)):
            patterns |= bits[i::nbits] << shift
    return posit_decode_array(patterns, cfg)


def save_posit_array(fh, x: np.ndarray, nbits: int, es: int) -> None:
    """Write *x* as a posit(nbits, es) container to a binary file/stream.

    *fh* may be a path or an open binary file object.
    """
    arr = np.atleast_1d(np.asarray(x, dtype=np.float64)).ravel()
    header = _MAGIC + struct.pack("<BBBxQ", _VERSION, nbits, es,
                                  arr.size)
    payload = pack_posit_array(arr, nbits, es)
    if isinstance(fh, (str, bytes)):
        with open(fh, "wb") as f:
            f.write(header)
            f.write(payload)
    else:
        fh.write(header)
        fh.write(payload)


def load_posit_array(fh) -> tuple[np.ndarray, PositConfig]:
    """Read a posit container; returns ``(values, config)``."""
    if isinstance(fh, (str, bytes)):
        with open(fh, "rb") as f:
            data = f.read()
    else:
        data = fh.read()
    if len(data) < 16 or data[:4] != _MAGIC:
        raise PositError("not a posit container (bad magic)")
    version, nbits, es, count = struct.unpack("<BBBxQ", data[4:16])
    if version != _VERSION:
        raise PositError(f"unsupported container version {version}")
    values = unpack_posit_array(data[16:], count, nbits, es)
    return values, posit_config(nbits, es)
