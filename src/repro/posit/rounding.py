"""Vectorized float64 → posit quantization.

This is the kernel every emulated posit operation goes through: compute
the operation in IEEE double precision (which holds every posit(≤32, ≤3)
value exactly), then call :func:`posit_round` to round the result to the
nearest posit.  The implementation works purely on ``int64`` NumPy arrays
using the "round the monotone integer encoding" technique:

1. decompose each double into scale ``s`` and 52-bit fraction,
2. assemble the *exact* posit bit pattern extended with all 52 fraction
   bits as ``(regime | payload)`` where ``payload = (e << 52) | frac52``
   fits in an int64,
3. round the extended pattern to ``nbits`` bits with round-to-nearest /
   ties-to-even — the carry out of the fraction automatically propagates
   through exponent and regime because posit patterns order the same way
   their values do,
4. decode the rounded pattern back to a double.

The result is bit-identical to the exact scalar reference
:func:`repro.posit.codec.round_to_nearest` (the test suite checks this
exhaustively for small widths and statistically for the paper's formats).

The hot path avoids the full pattern route: regions that store at least
one fraction bit have *uniformly* spaced posits, so rounding there is a
divide / ``np.rint`` / multiply against the region's granule.  The
regime / exponent / fraction-width chain that used to be recomputed per
call is a function of the frexp exponent alone, so it is precomputed
once per ``(nbits, es)`` into two 2098-entry tables (one per possible
float64 exponent) and gathered with ``np.take``; intermediates live in
a :class:`~repro.kernels.scratch.ScratchPool` instead of fresh
temporaries.  Narrow formats can skip even this via the searchsorted
tables in :mod:`repro.kernels.lut` (see
:class:`~repro.formats.posit_format.PositFormat`).
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidPositConfig
from ..kernels.scratch import ScratchPool
from .codec import PositConfig, posit_config

__all__ = [
    "posit_round",
    "posit_encode_array",
    "posit_decode_array",
    "posit_two_level_spec",
    "VECTORIZED_MAX_NBITS",
]

# keep = nbits - 3 payload bits must leave a non-negative drop count from
# the (es + 52)-bit exact payload, and patterns must fit in int64.
VECTORIZED_MAX_NBITS = 50

_SCRATCH = ScratchPool()

#: frexp exponents of finite nonzero doubles span [-1073, 1024]
_E_LO = -1073
_E_TABLE = 2098

#: (nbits, es) → (minpos, maxpos, fast-region table, granule table);
#: the latter two are indexed by shifted frexp exponent
_GRANULES: dict[tuple[int, int],
                tuple[float, float, np.ndarray, np.ndarray]] = {}


def _granule_tables(cfg: PositConfig
                    ) -> tuple[float, float, np.ndarray, np.ndarray]:
    tabs = _GRANULES.get((cfg.nbits, cfg.es))
    if tabs is None:
        _check_vectorizable(cfg)
        e = np.arange(_E_LO, _E_LO + _E_TABLE, dtype=np.int64)
        s = e - 1                # |x| in [2**s, 2**(s+1))
        k = s >> cfg.es
        r_len = np.where(k >= 0, k + 2, -k + 1)
        f_bits = np.int64(cfg.nbits - 1 - cfg.es) - r_len
        fast = f_bits >= 1
        # granule 2**(s - f_bits) where the region stores fraction bits
        # (never 0: f_bits >= 1 keeps s within ±max_scale <= 1022); the
        # filler 2**0 elsewhere is never used — the mask is False there
        g = np.ldexp(1.0, np.where(fast, s - f_bits,
                                   np.int64(0)).astype(np.int32))
        tabs = (float(cfg.minpos), float(cfg.maxpos), fast, g)
        _GRANULES[(cfg.nbits, cfg.es)] = tabs
    return tabs


def posit_two_level_spec(cfg: PositConfig
                         ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Bucket spec for a :class:`repro.kernels.lut.TwoLevelTable`.

    Returns ``(granules, affine, dense_candidates)``.  The affine
    buckets are exactly the fast region of :func:`posit_round` — scales
    storing at least one fraction bit, where posits are uniformly
    spaced and ``rint(x/g)*g`` equals pattern rounding (rint is
    sign-symmetric, so the signed form needs no abs/copysign).  The
    dense candidates enumerate every posit value of the tapered
    extremes below/above that region, bracketed by the first value
    inside it, so dense-lane inputs can round to any value they are
    able to reach.
    """
    _, _, fast, g = _granule_tables(cfg)
    affine = fast.copy()
    npat = np.int64(cfg.maxpos_pattern + 1)
    if affine.any():
        idx = np.flatnonzero(affine)
        # table index i covers |x| in [2**s, 2**(s+1)), s = i + _E_LO - 1
        s_lo = int(idx[0]) + _E_LO - 1
        s_hi = int(idx[-1]) + _E_LO - 1
        edges = posit_encode_array(
            np.array([2.0 ** s_lo, 2.0 ** (s_hi + 1)]), cfg)
        pats = np.concatenate([
            np.arange(0, min(int(edges[0]) + 2, int(npat))),
            np.arange(max(int(edges[1]) - 1, 0), int(npat)),
        ])
    else:
        # no uniformly-spaced region (very narrow formats): the whole
        # value set becomes the dense table
        pats = np.arange(int(npat))
    vals = posit_decode_array(pats, cfg)
    candidates = np.concatenate([vals, -vals])
    return g.copy(), affine, candidates


def _check_vectorizable(cfg: PositConfig) -> None:
    if cfg.nbits > VECTORIZED_MAX_NBITS:
        raise InvalidPositConfig(
            f"vectorized path supports nbits <= {VECTORIZED_MAX_NBITS}, "
            f"got {cfg.nbits}; use the scalar codec instead")
    if cfg.max_scale > 1022:
        raise InvalidPositConfig(
            f"posit({cfg.nbits},{cfg.es}) has maxpos = 2**{cfg.max_scale}, "
            "which exceeds the float64 carrier range")


def _split_finite(ax: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(s, frac52)`` with ``ax = (1 + frac52/2**52) * 2**s`` exactly.

    *ax* must be positive, finite and normal (guaranteed by the minpos /
    maxpos clamping done by the callers — minpos of any supported format
    is far above the float64 subnormal threshold only for small formats;
    for wide formats the clamp still lands on a normal double).
    """
    m, e = np.frexp(ax)  # ax = m * 2**e, m in [0.5, 1)
    s = e.astype(np.int64) - 1
    m2 = m * 2.0  # in [1, 2), exact
    frac52 = ((m2 - 1.0) * 4503599627370496.0).astype(np.int64)  # * 2**52
    return s, frac52


def posit_encode_array(x: np.ndarray, cfg: PositConfig) -> np.ndarray:
    """Encode a float64 array to posit patterns (int64, two's complement).

    NaN / ±inf encode to NaR; zeros encode to 0; saturation follows the
    posit standard (see :mod:`repro.posit.codec`).
    """
    _check_vectorizable(cfg)
    minpos, maxpos = _granule_tables(cfg)[:2]
    x = np.asarray(x, dtype=np.float64)
    patterns = np.zeros(x.shape, dtype=np.int64)

    nar_mask = ~np.isfinite(x)
    zero_mask = x == 0
    regular = ~(nar_mask | zero_mask)
    if nar_mask.any():
        patterns[nar_mask] = np.int64(cfg.nar_pattern)
    if not regular.any():
        return patterns

    xv = x[regular]
    neg = xv < 0
    ax = np.abs(xv)

    p = np.empty(ax.shape, dtype=np.int64)
    hi = ax >= maxpos
    lo = ax <= minpos
    mid = ~(hi | lo)
    p[hi] = np.int64(cfg.maxpos_pattern)
    p[lo] = np.int64(cfg.minpos_pattern)

    if mid.any():
        p[mid] = _encode_mid(ax[mid], cfg)

    p = np.where(neg, (np.int64(cfg.npat) - p) & np.int64(cfg.npat - 1), p)
    patterns[regular] = p
    return patterns


def _encode_mid(ax: np.ndarray, cfg: PositConfig) -> np.ndarray:
    """Encode magnitudes strictly between minpos and maxpos."""
    es = cfg.es
    nbits = cfg.nbits
    s, frac52 = _split_finite(ax)

    k = s >> es
    e = s - (k << es)
    r_len = np.where(k >= 0, k + 2, -k + 1)
    keep = np.int64(nbits - 1) - r_len  # >= 0 after clamping
    regime = np.where(k >= 0, ((np.int64(1) << (k + 1)) - 1) << 1,
                      np.int64(1))

    # payload = (e << 52) | frac52, exact in es + 52 bits; build in place
    payload = np.left_shift(e, np.int64(52), out=e)
    np.bitwise_or(payload, frac52, out=payload)
    drop = np.int64(es + 52) - keep  # > 0 always (nbits <= 50)

    base = (regime << keep) | (payload >> drop)
    guard = (payload >> (drop - 1)) & 1
    sticky = (payload & ((np.int64(1) << (drop - 1)) - 1)) != 0
    lsb = base & 1
    round_up = (guard == 1) & (sticky | (lsb == 1))
    pattern = np.add(base, round_up.astype(np.int64), out=base)
    np.minimum(pattern, np.int64(cfg.maxpos_pattern), out=pattern)
    return pattern


def posit_decode_array(patterns: np.ndarray, cfg: PositConfig) -> np.ndarray:
    """Decode int64 posit patterns to their exact float64 values.

    NaR decodes to NaN.  Patterns are taken modulo ``2**nbits``.
    """
    _check_vectorizable(cfg)
    patterns = np.asarray(patterns, dtype=np.int64) & np.int64(cfg.npat - 1)
    out = np.zeros(patterns.shape, dtype=np.float64)

    nar = patterns == cfg.nar_pattern
    zero = patterns == 0
    regular = ~(nar | zero)
    if nar.any():
        out[nar] = np.nan
    if not regular.any():
        return out

    p = patterns[regular]
    npos = cfg.nbits - 1
    neg = p > np.int64(cfg.nar_pattern)
    mag = np.where(neg, (np.int64(cfg.npat) - p) & np.int64(cfg.npat - 1), p)

    # Regime run length via the highest set bit of the bit-flipped field.
    first = (mag >> np.int64(npos - 1)) & 1
    field_mask = np.int64((1 << npos) - 1)
    t = np.where(first == 1, ~mag & field_mask, mag)
    # t == 0 only for maxpos (all ones). frexp gives floor(log2(t)) + 1.
    t_safe = np.where(t == 0, np.int64(1), t)
    hsb = np.frexp(t_safe.astype(np.float64))[1].astype(np.int64) - 1
    run = np.where(t == 0, np.int64(npos), np.int64(npos - 1) - hsb)

    k = np.where(first == 1, run - 1, -run)
    r_len = np.minimum(run + 1, np.int64(npos))
    w = np.int64(npos) - r_len
    payload = mag & ((np.int64(1) << w) - 1)

    e_bits = np.minimum(np.int64(cfg.es), w)
    e = (payload >> (w - e_bits)) << (np.int64(cfg.es) - e_bits)
    f_bits = w - e_bits
    frac = payload & ((np.int64(1) << f_bits) - 1)

    scale = np.add(k << np.int64(cfg.es), e, out=e)
    significand = frac.astype(np.float64)
    np.multiply(significand, np.ldexp(1.0, -f_bits.astype(np.int32)),
                out=significand)
    np.add(significand, 1.0, out=significand)
    value = np.ldexp(significand, scale.astype(np.int32),
                     out=significand)
    out[regular] = np.where(neg, -value, value)
    return out


def posit_round(x: np.ndarray | float, nbits: int, es: int) -> np.ndarray:
    """Quantize *x* (float64 scalar or array) to the nearest posit values.

    Equivalent to ``decode(encode(x))`` but fused.  This is the hot path of
    every emulated posit operation in the library, so values whose scale
    region stores at least one fraction bit take a direct route: round the
    double to the posit granularity ``2**(s - f_bits(s))`` with
    ``np.rint`` (round-half-even).  In such regions posits are *uniformly*
    spaced across ``[2**s, 2**(s+1)]``, both interval endpoints are
    representable, and the parity of the multiple equals the parity of the
    posit pattern — so value rounding and the standard's pattern rounding
    agree bit-for-bit (the test suite asserts this).  Values in the
    tapered extremes (no stored fraction bits, where rounding becomes
    geometric) fall back to the exact pattern-based path.
    """
    cfg = posit_config(nbits, es)
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim == 0:
        return _posit_round_impl(arr.reshape(1), cfg)[0]
    return _posit_round_impl(arr, cfg)


def _posit_round_impl(arr: np.ndarray, cfg: PositConfig) -> np.ndarray:
    fast_tbl, g_tbl = _granule_tables(cfg)[2:]
    shape = arr.shape
    ax = _SCRATCH.take(shape)
    g = _SCRATCH.take(shape)
    m = _SCRATCH.take(shape)
    e = _SCRATCH.take(shape, np.int32)
    fast = _SCRATCH.take(shape, np.bool_)
    tmp = _SCRATCH.take(shape, np.bool_)
    try:
        np.abs(arr, out=ax)
        with np.errstate(invalid="ignore"):
            np.frexp(ax, m, e)
        np.add(e, -_E_LO, out=e)
        g_tbl.take(e, out=g)
        fast_tbl.take(e, out=fast)
        # The table excludes the tapered extremes (f_bits < 1 there, so
        # sub-minpos and near-maxpos scales are already False); of the
        # special values sharing frexp exponent 0, ±0 and NaN round
        # correctly through the arithmetic below, leaving only ±inf to
        # exclude (NaN compares False and takes the NaR route, which is
        # equally correct).
        np.less(ax, np.inf, out=tmp)
        np.logical_and(fast, tmp, out=fast)

        np.divide(ax, g, out=m)
        np.rint(m, out=m)
        np.multiply(m, g, out=m)
        np.copysign(m, arr, out=m)
        out = np.where(fast, m, arr)

        # slow path: tapered extremes, clamps, non-finite → pattern route
        np.logical_not(fast, out=fast)
        np.not_equal(arr, 0.0, out=tmp)
        np.logical_and(fast, tmp, out=fast)
        if fast.any():
            xs = arr[fast]
            out[fast] = posit_decode_array(posit_encode_array(xs, cfg),
                                           cfg)
        return out
    finally:
        _SCRATCH.give(ax)
        _SCRATCH.give(g)
        _SCRATCH.give(m)
        _SCRATCH.give(e)
        _SCRATCH.give(fast)
        _SCRATCH.give(tmp)
