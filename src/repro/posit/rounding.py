"""Vectorized float64 → posit quantization.

This is the kernel every emulated posit operation goes through: compute
the operation in IEEE double precision (which holds every posit(≤32, ≤3)
value exactly), then call :func:`posit_round` to round the result to the
nearest posit.  The implementation works purely on ``int64`` NumPy arrays
using the "round the monotone integer encoding" technique:

1. decompose each double into scale ``s`` and 52-bit fraction,
2. assemble the *exact* posit bit pattern extended with all 52 fraction
   bits as ``(regime | payload)`` where ``payload = (e << 52) | frac52``
   fits in an int64,
3. round the extended pattern to ``nbits`` bits with round-to-nearest /
   ties-to-even — the carry out of the fraction automatically propagates
   through exponent and regime because posit patterns order the same way
   their values do,
4. decode the rounded pattern back to a double.

The result is bit-identical to the exact scalar reference
:func:`repro.posit.codec.round_to_nearest` (the test suite checks this
exhaustively for small widths and statistically for the paper's formats).
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidPositConfig
from .codec import PositConfig, posit_config

__all__ = [
    "posit_round",
    "posit_encode_array",
    "posit_decode_array",
    "VECTORIZED_MAX_NBITS",
]

# keep = nbits - 3 payload bits must leave a non-negative drop count from
# the (es + 52)-bit exact payload, and patterns must fit in int64.
VECTORIZED_MAX_NBITS = 50


def _check_vectorizable(cfg: PositConfig) -> None:
    if cfg.nbits > VECTORIZED_MAX_NBITS:
        raise InvalidPositConfig(
            f"vectorized path supports nbits <= {VECTORIZED_MAX_NBITS}, "
            f"got {cfg.nbits}; use the scalar codec instead")
    if cfg.max_scale > 1022:
        raise InvalidPositConfig(
            f"posit({cfg.nbits},{cfg.es}) has maxpos = 2**{cfg.max_scale}, "
            "which exceeds the float64 carrier range")


def _split_finite(ax: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(s, frac52)`` with ``ax = (1 + frac52/2**52) * 2**s`` exactly.

    *ax* must be positive, finite and normal (guaranteed by the minpos /
    maxpos clamping done by the callers — minpos of any supported format
    is far above the float64 subnormal threshold only for small formats;
    for wide formats the clamp still lands on a normal double).
    """
    m, e = np.frexp(ax)  # ax = m * 2**e, m in [0.5, 1)
    s = e.astype(np.int64) - 1
    m2 = m * 2.0  # in [1, 2), exact
    frac52 = ((m2 - 1.0) * 4503599627370496.0).astype(np.int64)  # * 2**52
    return s, frac52


def posit_encode_array(x: np.ndarray, cfg: PositConfig) -> np.ndarray:
    """Encode a float64 array to posit patterns (int64, two's complement).

    NaN / ±inf encode to NaR; zeros encode to 0; saturation follows the
    posit standard (see :mod:`repro.posit.codec`).
    """
    _check_vectorizable(cfg)
    x = np.asarray(x, dtype=np.float64)
    patterns = np.zeros(x.shape, dtype=np.int64)

    nar_mask = ~np.isfinite(x)
    zero_mask = x == 0
    regular = ~(nar_mask | zero_mask)
    if np.any(nar_mask):
        patterns[nar_mask] = np.int64(cfg.nar_pattern)
    if not np.any(regular):
        return patterns

    xv = x[regular]
    neg = xv < 0
    ax = np.abs(xv)

    maxpos = float(cfg.maxpos)
    minpos = float(cfg.minpos)
    p = np.empty(ax.shape, dtype=np.int64)
    hi = ax >= maxpos
    lo = ax <= minpos
    mid = ~(hi | lo)
    p[hi] = np.int64(cfg.maxpos_pattern)
    p[lo] = np.int64(cfg.minpos_pattern)

    if np.any(mid):
        p[mid] = _encode_mid(ax[mid], cfg)

    p = np.where(neg, (np.int64(cfg.npat) - p) & np.int64(cfg.npat - 1), p)
    patterns[regular] = p
    return patterns


def _encode_mid(ax: np.ndarray, cfg: PositConfig) -> np.ndarray:
    """Encode magnitudes strictly between minpos and maxpos."""
    es = cfg.es
    nbits = cfg.nbits
    s, frac52 = _split_finite(ax)

    k = s >> es
    e = s - (k << es)
    r_len = np.where(k >= 0, k + 2, -k + 1)
    keep = np.int64(nbits - 1) - r_len  # >= 0 after clamping
    regime = np.where(k >= 0, ((np.int64(1) << (k + 1)) - 1) << 1,
                      np.int64(1))

    payload = (e << np.int64(52)) | frac52  # exact, es + 52 bits
    drop = np.int64(es + 52) - keep  # > 0 always (nbits <= 50)

    base = (regime << keep) | (payload >> drop)
    guard = (payload >> (drop - 1)) & 1
    sticky = (payload & ((np.int64(1) << (drop - 1)) - 1)) != 0
    lsb = base & 1
    round_up = (guard == 1) & (sticky | (lsb == 1))
    pattern = base + round_up.astype(np.int64)
    np.minimum(pattern, np.int64(cfg.maxpos_pattern), out=pattern)
    return pattern


def posit_decode_array(patterns: np.ndarray, cfg: PositConfig) -> np.ndarray:
    """Decode int64 posit patterns to their exact float64 values.

    NaR decodes to NaN.  Patterns are taken modulo ``2**nbits``.
    """
    _check_vectorizable(cfg)
    patterns = np.asarray(patterns, dtype=np.int64) & np.int64(cfg.npat - 1)
    out = np.zeros(patterns.shape, dtype=np.float64)

    nar = patterns == cfg.nar_pattern
    zero = patterns == 0
    regular = ~(nar | zero)
    if np.any(nar):
        out[nar] = np.nan
    if not np.any(regular):
        return out

    p = patterns[regular]
    npos = cfg.nbits - 1
    neg = p > np.int64(cfg.nar_pattern)
    mag = np.where(neg, (np.int64(cfg.npat) - p) & np.int64(cfg.npat - 1), p)

    # Regime run length via the highest set bit of the bit-flipped field.
    first = (mag >> np.int64(npos - 1)) & 1
    field_mask = np.int64((1 << npos) - 1)
    t = np.where(first == 1, ~mag & field_mask, mag)
    # t == 0 only for maxpos (all ones). frexp gives floor(log2(t)) + 1.
    t_safe = np.where(t == 0, np.int64(1), t)
    hsb = np.frexp(t_safe.astype(np.float64))[1].astype(np.int64) - 1
    run = np.where(t == 0, np.int64(npos), np.int64(npos - 1) - hsb)

    k = np.where(first == 1, run - 1, -run)
    r_len = np.minimum(run + 1, np.int64(npos))
    w = np.int64(npos) - r_len
    payload = mag & ((np.int64(1) << w) - 1)

    e_bits = np.minimum(np.int64(cfg.es), w)
    e = (payload >> (w - e_bits)) << (np.int64(cfg.es) - e_bits)
    f_bits = w - e_bits
    frac = payload & ((np.int64(1) << f_bits) - 1)

    scale = (k << np.int64(cfg.es)) + e
    significand = 1.0 + frac.astype(np.float64) * np.ldexp(
        1.0, -f_bits.astype(np.int32))
    value = np.ldexp(significand, scale.astype(np.int32))
    out[regular] = np.where(neg, -value, value)
    return out


def posit_round(x: np.ndarray | float, nbits: int, es: int) -> np.ndarray:
    """Quantize *x* (float64 scalar or array) to the nearest posit values.

    Equivalent to ``decode(encode(x))`` but fused.  This is the hot path of
    every emulated posit operation in the library, so values whose scale
    region stores at least one fraction bit take a direct route: round the
    double to the posit granularity ``2**(s - f_bits(s))`` with
    ``np.rint`` (round-half-even).  In such regions posits are *uniformly*
    spaced across ``[2**s, 2**(s+1)]``, both interval endpoints are
    representable, and the parity of the multiple equals the parity of the
    posit pattern — so value rounding and the standard's pattern rounding
    agree bit-for-bit (the test suite asserts this).  Values in the
    tapered extremes (no stored fraction bits, where rounding becomes
    geometric) fall back to the exact pattern-based path.
    """
    cfg = posit_config(nbits, es)
    _check_vectorizable(cfg)
    arr = np.asarray(x, dtype=np.float64)
    scalar = arr.ndim == 0
    arr = np.atleast_1d(arr)
    out = _posit_round_impl(arr, cfg)
    return out[0] if scalar else out


def _posit_round_impl(arr: np.ndarray, cfg: PositConfig) -> np.ndarray:
    es = cfg.es
    ax = np.abs(arr)
    with np.errstate(invalid="ignore"):
        m, e = np.frexp(ax)
    s = e.astype(np.int64) - 1
    k = s >> es
    r_len = np.where(k >= 0, k + 2, -k + 1)
    f_bits = np.int64(cfg.nbits - 1 - es) - r_len

    fast = (
        (f_bits >= 1)
        & (ax > float(cfg.minpos))
        & (ax < float(cfg.maxpos))
    )
    # the fast mask is False for 0, NaN, inf (comparisons yield False)

    f_bits_safe = np.where(fast, f_bits, np.int64(0))
    s_safe = np.where(fast, s, np.int64(0))
    g = np.ldexp(1.0, (s_safe - f_bits_safe).astype(np.int32))
    rounded = np.rint(ax / g) * g
    out = np.where(fast, np.copysign(rounded, arr), arr)

    slow = ~fast & (arr != 0)
    if np.any(slow):
        xs = arr[slow]
        out[slow] = posit_decode_array(posit_encode_array(xs, cfg), cfg)
    return out
