"""A ``Posit`` scalar type with operator overloading.

The paper (§IV-A) implemented its posit library as a C++ class with
overloaded ``+ - * /`` so that one algorithm specification could be run
under any arithmetic format.  This module is the Python analogue: a
small immutable value type wrapping a bit pattern and a
:class:`~repro.posit.codec.PositConfig`, with every operation correctly
rounded via the exact rational core in :mod:`repro.posit.arithmetic`.

Example
-------
>>> from repro.posit import Posit
>>> a = Posit(1.5, nbits=16, es=1)
>>> b = Posit(0.1, nbits=16, es=1)
>>> float(a + b)
1.5999755859375
>>> (a / Posit(0.0, 16, 1)).is_nar
True
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Union

from ..errors import NaRError
from . import arithmetic as _arith
from .codec import (PositConfig, decode_float, decode_fraction, encode,
                    posit_config)

__all__ = ["Posit"]

_Number = Union[int, float, Fraction, "Posit"]


class Posit:
    """An immutable posit scalar.

    Parameters
    ----------
    value:
        A real number to round into the format, or another :class:`Posit`
        (re-rounded if the formats differ).
    nbits, es:
        Format parameters; the paper writes this as ``Posit(nbits, es)``.

    Notes
    -----
    Mixed-format operations are deliberately **not** supported — the
    paper's experiments keep each algorithm in a single format, and
    silent promotion would hide rounding events.  Convert explicitly with
    :meth:`cast`.
    """

    __slots__ = ("_pattern", "_cfg")

    def __init__(self, value: _Number = 0.0, nbits: int = 32, es: int = 2):
        cfg = posit_config(nbits, es)
        if isinstance(value, Posit):
            if value._cfg == cfg:
                pattern = value._pattern
            else:
                pattern = (cfg.nar_pattern if value.is_nar
                           else encode(value.as_fraction(), cfg))
        else:
            pattern = encode(value, cfg)
        object.__setattr__(self, "_pattern", pattern)
        object.__setattr__(self, "_cfg", cfg)

    def __setattr__(self, *_args):  # pragma: no cover - immutability guard
        raise AttributeError("Posit instances are immutable")

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_pattern(cls, pattern: int, nbits: int, es: int) -> "Posit":
        """Build a posit directly from its bit pattern (mod ``2**nbits``)."""
        cfg = posit_config(nbits, es)
        self = cls.__new__(cls)
        object.__setattr__(self, "_pattern", pattern & (cfg.npat - 1))
        object.__setattr__(self, "_cfg", cfg)
        return self

    @classmethod
    def nar(cls, nbits: int = 32, es: int = 2) -> "Posit":
        """The NaR (Not a Real) value of the format."""
        cfg = posit_config(nbits, es)
        return cls.from_pattern(cfg.nar_pattern, nbits, es)

    # -- accessors -----------------------------------------------------------
    @property
    def pattern(self) -> int:
        """The raw bit pattern (unsigned, ``[0, 2**nbits)``)."""
        return self._pattern

    @property
    def config(self) -> PositConfig:
        """The format this value lives in."""
        return self._cfg

    @property
    def nbits(self) -> int:
        return self._cfg.nbits

    @property
    def es(self) -> int:
        return self._cfg.es

    @property
    def is_nar(self) -> bool:
        """True for the single posit exception value."""
        return self._pattern == self._cfg.nar_pattern

    @property
    def is_zero(self) -> bool:
        return self._pattern == 0

    def as_fraction(self) -> Fraction:
        """Exact rational value (raises :class:`NaRError` on NaR)."""
        return decode_fraction(self._pattern, self._cfg)

    def __float__(self) -> float:
        return decode_float(self._pattern, self._cfg)

    def __bool__(self) -> bool:
        return self._pattern != 0

    def cast(self, nbits: int, es: int) -> "Posit":
        """Re-round this value into another posit format."""
        return Posit(self, nbits=nbits, es=es)

    # -- arithmetic -----------------------------------------------------------
    def _coerce(self, other: _Number) -> "Posit | None":
        if isinstance(other, Posit):
            if other._cfg != self._cfg:
                raise TypeError(
                    f"mixed posit formats: {self._cfg} vs {other._cfg}; "
                    "cast explicitly")
            return other
        if isinstance(other, (int, float, Fraction)):
            return Posit(other, self.nbits, self.es)
        return None

    def _wrap(self, pattern: int) -> "Posit":
        return Posit.from_pattern(pattern, self.nbits, self.es)

    def __add__(self, other: _Number):
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return self._wrap(_arith.add_patterns(self._pattern, o._pattern,
                                              self._cfg))

    __radd__ = __add__

    def __sub__(self, other: _Number):
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return self._wrap(_arith.sub_patterns(self._pattern, o._pattern,
                                              self._cfg))

    def __rsub__(self, other: _Number):
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return self._wrap(_arith.sub_patterns(o._pattern, self._pattern,
                                              self._cfg))

    def __mul__(self, other: _Number):
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return self._wrap(_arith.mul_patterns(self._pattern, o._pattern,
                                              self._cfg))

    __rmul__ = __mul__

    def __truediv__(self, other: _Number):
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return self._wrap(_arith.div_patterns(self._pattern, o._pattern,
                                              self._cfg))

    def __rtruediv__(self, other: _Number):
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return self._wrap(_arith.div_patterns(o._pattern, self._pattern,
                                              self._cfg))

    def __neg__(self) -> "Posit":
        return self._wrap(_arith.neg_pattern(self._pattern, self._cfg))

    def __pos__(self) -> "Posit":
        return self

    def __abs__(self) -> "Posit":
        if self.is_nar:
            return self
        return -self if self < 0 else self

    def sqrt(self) -> "Posit":
        """Correctly-rounded square root (NaR for negative input)."""
        return self._wrap(_arith.sqrt_pattern(self._pattern, self._cfg))

    def fma(self, other: _Number, addend: _Number) -> "Posit":
        """Fused ``self * other + addend`` with one rounding (ablation use)."""
        o = self._coerce(other)
        a = self._coerce(addend)
        if o is None or a is None:
            raise TypeError("fma operands must be numbers")
        return self._wrap(_arith.fma_patterns(self._pattern, o._pattern,
                                              a._pattern, self._cfg))

    # -- comparisons -----------------------------------------------------------
    def _cmp(self, other: _Number) -> int | None:
        o = self._coerce(other)
        if o is None:
            return None
        return _arith.compare_patterns(self._pattern, o._pattern, self._cfg)

    def __eq__(self, other) -> bool:
        if isinstance(other, Posit) and other._cfg != self._cfg:
            return False
        try:
            c = self._cmp(other)
        except TypeError:
            return NotImplemented
        return NotImplemented if c is None else c == 0

    def __lt__(self, other):
        c = self._cmp(other)
        return NotImplemented if c is None else c < 0

    def __le__(self, other):
        c = self._cmp(other)
        return NotImplemented if c is None else c <= 0

    def __gt__(self, other):
        c = self._cmp(other)
        return NotImplemented if c is None else c > 0

    def __ge__(self, other):
        c = self._cmp(other)
        return NotImplemented if c is None else c >= 0

    def __hash__(self) -> int:
        return hash((self._pattern, self._cfg.nbits, self._cfg.es))

    # -- display -----------------------------------------------------------
    def __repr__(self) -> str:
        if self.is_nar:
            return f"Posit(NaR, nbits={self.nbits}, es={self.es})"
        return f"Posit({float(self)!r}, nbits={self.nbits}, es={self.es})"

    def bit_string(self) -> str:
        """The pattern as a zero-padded binary string (MSB first)."""
        return format(self._pattern, f"0{self.nbits}b")

    def fields(self) -> dict:
        """Decomposed fields: sign, regime k, exponent, fraction, scale.

        Useful for teaching/debugging; NaR and zero raise
        :class:`NaRError` / return the zero decomposition respectively.
        """
        if self.is_nar:
            raise NaRError("NaR has no field decomposition")
        if self.is_zero:
            return {"sign": 0, "k": 0, "exponent": 0, "fraction": 0,
                    "fraction_bits": 0, "scale": 0}
        from .codec import _decode_fields
        sign, scale, frac, f_bits = _decode_fields(self._pattern, self._cfg)
        k = scale >> self.es
        return {"sign": sign, "k": k, "exponent": scale - (k << self.es),
                "fraction": frac, "fraction_bits": f_bits, "scale": scale}
