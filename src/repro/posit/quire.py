"""The quire: an exact accumulator for deferred-rounding dot products.

Posit conventions (paper §II-C) define a scratchpad register wide enough
to accumulate sums of products of posits *exactly*, rounding only once at
the end.  The paper deliberately **excludes** the quire from its main
experiments (it would conflate format advantages with fused-operation
advantages); we implement it anyway so the library can quantify exactly
how much the quire would have bought — the ``ext-quire`` ablation.

A product of two posit(nbits, es) values is ``±2**s * m`` with
``s ∈ [2*min_scale, 2*max_scale]`` and ``m`` carrying at most
``2*(nbits-2)`` significand bits, so every partial product is an integer
multiple of ``2**(2*min_scale - 2*(nbits-2))``.  We therefore accumulate
in fixed point over unbounded Python integers — functionally identical
to the standard's ``16*nbits``-bit hardware quire but immune to the
(intentionally absurd) overflow cases.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

import numpy as np

from .codec import PositConfig, decode_fraction, encode, posit_config
from .scalar import Posit

__all__ = ["Quire", "fused_dot", "fused_dot_float"]


class Quire:
    """Exact accumulator for one posit format.

    Supports ``+= posit``, ``add_product(a, b)`` and final rounding via
    :meth:`to_posit`.  NaR poisoning: once any NaR enters, the quire
    stays NaR until :meth:`clear`.
    """

    def __init__(self, nbits: int = 32, es: int = 2):
        self._cfg: PositConfig = posit_config(nbits, es)
        self._sum: Fraction = Fraction(0)
        self._nar: bool = False

    @property
    def config(self) -> PositConfig:
        return self._cfg

    @property
    def is_nar(self) -> bool:
        return self._nar

    def clear(self) -> None:
        """Reset to exact zero (also clears NaR poisoning)."""
        self._sum = Fraction(0)
        self._nar = False

    def _check(self, p: Posit) -> bool:
        if p.config != self._cfg:
            raise TypeError(f"quire format {self._cfg} != operand {p.config}")
        if p.is_nar:
            self._nar = True
            return False
        return True

    def add(self, value: Posit) -> "Quire":
        """Accumulate a single posit exactly."""
        if self._check(value):
            self._sum += value.as_fraction()
        return self

    __iadd__ = add

    def sub(self, value: Posit) -> "Quire":
        """Subtract a single posit exactly."""
        if self._check(value):
            self._sum -= value.as_fraction()
        return self

    __isub__ = sub

    def add_product(self, a: Posit, b: Posit) -> "Quire":
        """Accumulate ``a * b`` exactly (the fused dot-product step)."""
        if self._check(a) and self._check(b):
            self._sum += a.as_fraction() * b.as_fraction()
        return self

    def value(self) -> Fraction:
        """The exact accumulated value."""
        if self._nar:
            raise ArithmeticError("quire is NaR")
        return self._sum

    def to_posit(self) -> Posit:
        """Round the exact sum to the quire's posit format (the only rounding)."""
        if self._nar:
            return Posit.nar(self._cfg.nbits, self._cfg.es)
        return Posit.from_pattern(encode(self._sum, self._cfg),
                                  self._cfg.nbits, self._cfg.es)


def fused_dot(xs: Iterable[Posit], ys: Iterable[Posit],
              nbits: int, es: int) -> Posit:
    """Quire-fused dot product of two posit sequences (one final rounding)."""
    q = Quire(nbits, es)
    for a, b in zip(xs, ys):
        q.add_product(a, b)
    return q.to_posit()


def fused_dot_float(x: np.ndarray, y: np.ndarray, nbits: int, es: int) -> float:
    """Quire-fused dot product of float64 arrays holding exact posit values.

    The inputs are quantized to the format first (a no-op when they
    already hold posit values, as everywhere inside the emulated
    solvers), products and the sum are exact, and a single rounding
    produces the result — the quire semantics, vectorized enough for the
    ablation experiment.
    """
    cfg = posit_config(nbits, es)
    from .rounding import posit_round
    xq = posit_round(np.asarray(x, dtype=np.float64), nbits, es)
    yq = posit_round(np.asarray(y, dtype=np.float64), nbits, es)
    total = Fraction(0)
    for a, b in zip(xq.tolist(), yq.tolist()):
        total += Fraction(a) * Fraction(b)
    return float(Posit.from_pattern(encode(total, cfg), nbits, es))
