"""Enumeration tables of posit value sets.

Small-format posits can be enumerated exhaustively; these tables back
the exhaustive differential tests, the precision-distribution figures
(paper Figs. 3 and 5) and the documentation examples.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache

import numpy as np

from .codec import (PositConfig, all_patterns, decode_float, decode_fraction,
                    posit_config)

__all__ = [
    "value_table",
    "value_array",
    "positive_values",
    "gap_table",
    "decimal_accuracy_at",
]


@lru_cache(maxsize=32)
def value_table(nbits: int, es: int) -> tuple[tuple[int, Fraction], ...]:
    """All (pattern, exact value) pairs, sorted by value. NaR excluded.

    Cached; only call for small widths (the table has ``2**nbits - 1``
    entries).
    """
    cfg = posit_config(nbits, es)
    if nbits > 20:
        raise ValueError("value_table is for exhaustive small widths "
                         f"(nbits <= 20), got {nbits}")
    pairs = [(p, decode_fraction(p, cfg)) for p in all_patterns(cfg)]
    pairs.sort(key=lambda pv: pv[1])
    return tuple(pairs)


def value_array(nbits: int, es: int) -> np.ndarray:
    """All finite posit values as a sorted float64 array (NaR excluded)."""
    return np.array([float(v) for _, v in value_table(nbits, es)],
                    dtype=np.float64)


def positive_values(nbits: int, es: int) -> np.ndarray:
    """Sorted positive posit values as float64."""
    vals = value_array(nbits, es)
    return vals[vals > 0]


def gap_table(nbits: int, es: int) -> np.ndarray:
    """``(value, gap_to_next, relative_gap)`` rows over the positive range.

    ``relative_gap`` is the local relative spacing — the quantity whose
    reciprocal log10 the paper plots as "digits of precision" in Fig. 3.
    """
    vals = positive_values(nbits, es)
    gaps = np.diff(vals)
    rel = gaps / vals[:-1]
    return np.column_stack([vals[:-1], gaps, rel])


def decimal_accuracy_at(x: float, nbits: int, es: int) -> float:
    """Decimal digits of accuracy of the format near *x* (Fig. 3b metric).

    Defined as ``-log10(relative gap)`` at the posit bracketing *x*.
    Returns 0.0 outside the representable range.
    """
    import math

    from .codec import fraction_bits_at_scale, floor_log2
    if x <= 0:
        raise ValueError("decimal_accuracy_at expects a positive x")
    cfg = posit_config(nbits, es)
    fx = Fraction(x)
    if fx >= cfg.maxpos or fx <= cfg.minpos:
        return 0.0
    s = floor_log2(fx)
    f_bits = fraction_bits_at_scale(s, cfg)
    # relative gap in [2**s, 2**(s+1)) ranges over [2**-(f_bits+1), 2**-f_bits];
    # use the gap at x's own significand for a smooth curve.
    gap = math.ldexp(1.0, s - f_bits)
    return -math.log10(gap / x)
