"""From-scratch posit arithmetic: bit-exact codec, exact scalar ops,
vectorized quantization, and the quire.

Public surface:

* :class:`Posit` -- scalar type with operator overloading (paper IV-A).
* :func:`posit_round` -- vectorized float64 -> nearest-posit quantization,
  the kernel behind every emulated posit operation in the solvers.
* :class:`PositConfig` / :func:`posit_config` -- format descriptors.
* :class:`Quire` / :func:`fused_dot` -- exact deferred-rounding accumulator
  (used only by the ablation experiments; the paper's main results
  round after every operation).
"""

from .codec import (PositConfig, all_patterns, decode_float, decode_fraction,
                    encode, fraction_bits_at_scale, posit_config,
                    round_to_nearest)
from .io import (load_posit_array, pack_posit_array,
                 save_posit_array, unpack_posit_array)
from .quire import Quire, fused_dot, fused_dot_float
from .rounding import posit_decode_array, posit_encode_array, posit_round
from .scalar import Posit

__all__ = [
    "Posit",
    "PositConfig",
    "posit_config",
    "encode",
    "decode_float",
    "decode_fraction",
    "round_to_nearest",
    "fraction_bits_at_scale",
    "all_patterns",
    "posit_round",
    "posit_encode_array",
    "posit_decode_array",
    "Quire",
    "fused_dot",
    "fused_dot_float",
    "pack_posit_array", "unpack_posit_array",
    "save_posit_array", "load_posit_array",
]
