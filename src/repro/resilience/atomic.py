"""Atomic file writes — crash-safe artifact persistence.

A sweep that is killed mid-write (OOM, timeout, Ctrl-C, power loss)
must never leave a truncated CSV or manifest behind: downstream plotting
and ``--resume`` both trust that an artifact which *exists* is
*complete*.  The standard POSIX recipe delivers that guarantee: write
to a temporary file **in the same directory** (so the final rename
never crosses a filesystem boundary), flush + fsync, then
``os.replace`` — which is atomic on POSIX and on modern Windows.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from typing import IO, Iterator

__all__ = ["atomic_open", "atomic_write_text"]


@contextlib.contextmanager
def atomic_open(path: str, mode: str = "w", encoding: str | None = None,
                newline: str | None = None) -> Iterator[IO]:
    """Open a temporary sibling of *path* for writing; publish on success.

    Yields a file handle backed by ``<path>.<random>.tmp`` in the same
    directory.  If the block completes, the temporary is fsynced and
    atomically renamed over *path*; if it raises (or the process dies),
    *path* is untouched and the temporary is removed (or left as
    ``*.tmp`` debris that never shadows a real artifact).
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, mode, encoding=encoding, newline=newline) as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_path)
        raise


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> str:
    """Atomically replace *path* with *text*; returns *path*."""
    with atomic_open(path, "w", encoding=encoding) as fh:
        fh.write(text)
    return path
