"""Seeded fault injection at named arithmetic sites.

The paper's subject is numerical *failure*; this module makes failure a
controllable input.  A :class:`FaultInjector` corrupts values flowing
through :class:`~repro.arith.context.FPContext` at five named sites —

``storage``
    the initial quantization of operands (``ctx.asarray``), i.e. bad
    memory under the matrix/vector data;
``matvec`` / ``dot`` / ``axpy``
    the outputs of the three kernels every iterative solver is built
    from;
``pivot``
    the Cholesky pivot square root (:func:`repro.linalg.cholesky
    .cholesky_factor` line 4) — the value whose sign decides breakdown.

Three fault models are provided: single **bit flips** in the format's
own bit encoding (via the bit codec every
:class:`~repro.formats.base.NumberFormat` carries — a flipped posit
regime bit can move a value by orders of magnitude, the realistic SDC
model), **NaR/NaN/±Inf** substitution (a poisoned exceptional value),
and relative **magnitude perturbation** (a mis-rounded op).

Determinism: the injector owns a single ``numpy`` Generator seeded at
construction and draws one uniform per element visited, in visit order.
The same seed, sites, rate and op sequence therefore reproduce the
identical corruption sequence — the regression tests assert this.

Usage — ambient (covers contexts built inside solvers)::

    inj = FaultInjector(seed=7, rate=1e-3, sites=("dot", "axpy"))
    with inj:
        result = conjugate_gradient(FPContext("posit32es2"), A, b)
    print(inj.count, inj.log[:3])

or scoped to one explicit context::

    ctx = FPContext("fp16", injector=inj)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..arith.context import set_active_injector
from ..errors import FaultInjected
from ..formats.base import NumberFormat

__all__ = [
    "SITES", "FaultModel", "BitFlip", "SpecialValue", "Perturb",
    "FaultRecord", "FaultInjector", "get_model",
]

#: every site instrumented in the library
SITES = ("matvec", "dot", "axpy", "pivot", "storage")


# ---------------------------------------------------------------------------
# Fault models
# ---------------------------------------------------------------------------

class FaultModel:
    """How a single value is corrupted once the rate test selects it."""

    name = "abstract"

    def corrupt(self, value: float, fmt: NumberFormat,
                rng: np.random.Generator) -> float:
        raise NotImplementedError


class BitFlip(FaultModel):
    """Flip one uniformly-chosen bit in the value's format encoding.

    The corrupted value is always another valid pattern of the format
    (possibly NaR/inf/NaN) — exactly what a storage upset produces.
    """

    name = "bitflip"

    def corrupt(self, value: float, fmt: NumberFormat,
                rng: np.random.Generator) -> float:
        bit = int(rng.integers(fmt.nbits))
        return fmt.from_bits(fmt.to_bits(float(value)) ^ (1 << bit))


class SpecialValue(FaultModel):
    """Replace the value with the format's exceptional encoding.

    Posit has a single exception value (NaR, carried as NaN); IEEE gets
    NaN, +inf or -inf with equal probability.  One rng draw is consumed
    either way so the corruption *sequence* stays format-independent.
    """

    name = "nar"

    def corrupt(self, value: float, fmt: NumberFormat,
                rng: np.random.Generator) -> float:
        choice = int(rng.integers(3))
        if fmt.saturates:  # posit: NaR is the only exceptional value
            return math.nan
        return (math.nan, math.inf, -math.inf)[choice]


class Perturb(FaultModel):
    """Scale the value by 10**u, u ~ Uniform(-decades, +decades).

    The result is re-rounded into the format, so the corruption is
    always silently representable (never an exceptional value unless
    the format overflows).
    """

    name = "perturb"

    def __init__(self, decades: float = 2.0):
        if not (decades > 0.0):
            raise ValueError(f"decades must be positive, got {decades!r}")
        self.decades = float(decades)

    def corrupt(self, value: float, fmt: NumberFormat,
                rng: np.random.Generator) -> float:
        factor = 10.0 ** rng.uniform(-self.decades, self.decades)
        return float(np.asarray(fmt.round(float(value) * factor)).item()) \
            if not math.isnan(value) else value


_MODELS = {m.name: m for m in (BitFlip, SpecialValue, Perturb)}


def get_model(model: str | FaultModel) -> FaultModel:
    """Resolve a model by name (``bitflip`` / ``nar`` / ``perturb``)."""
    if isinstance(model, FaultModel):
        return model
    try:
        return _MODELS[model]()
    except KeyError:
        raise ValueError(f"unknown fault model {model!r}; "
                         f"known: {sorted(_MODELS)}") from None


# ---------------------------------------------------------------------------
# The injector
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FaultRecord:
    """One corruption event, in injection order."""

    serial: int      # 0-based corruption counter
    visit: int       # which instrumented-op visit produced it
    site: str
    index: int       # flat element index within the visited value
    before: float
    after: float


class FaultInjector:
    """Deterministic, context-manager-driven silent-data-corruption source.

    Parameters
    ----------
    seed:
        Seeds the private Generator; the whole corruption sequence is a
        pure function of (seed, sites, rate, model, op sequence).
    rate:
        Per-element corruption probability at instrumented sites.
    sites:
        Which named sites to corrupt (subset of :data:`SITES`).
    model:
        ``"bitflip"`` (default), ``"nar"``, ``"perturb"``, or a
        :class:`FaultModel` instance.
    max_faults:
        Optional cap on total corruptions (None = unlimited).
    on_fault:
        ``"corrupt"`` (default) silently corrupts; ``"raise"`` raises
        :class:`~repro.errors.FaultInjected` at the first hit — useful
        for asserting that a site is actually reached.
    """

    def __init__(self, seed: int, rate: float = 1e-3,
                 sites: Sequence[str] = ("matvec", "dot", "axpy"),
                 model: str | FaultModel = "bitflip",
                 max_faults: int | None = None,
                 on_fault: str = "corrupt"):
        unknown = set(sites) - set(SITES)
        if unknown:
            raise ValueError(f"unknown fault sites {sorted(unknown)}; "
                             f"known: {SITES}")
        if not (0.0 <= rate <= 1.0):
            raise ValueError(f"rate must be in [0, 1], got {rate!r}")
        if on_fault not in ("corrupt", "raise"):
            raise ValueError(f"on_fault must be 'corrupt' or 'raise', "
                             f"got {on_fault!r}")
        self.seed = int(seed)
        self.rate = float(rate)
        self.sites = frozenset(sites)
        self.model = get_model(model)
        self.max_faults = max_faults
        self.on_fault = on_fault
        self.log: list[FaultRecord] = []
        self._previous = None
        self.reset()

    # -- lifecycle -------------------------------------------------------
    def reset(self) -> "FaultInjector":
        """Rewind to the initial state (fresh rng, empty log)."""
        self._rng = np.random.default_rng(self.seed)
        self.log.clear()
        self.visits = 0
        return self

    @property
    def count(self) -> int:
        """Number of corruptions injected so far."""
        return len(self.log)

    def __enter__(self) -> "FaultInjector":
        self.reset()
        self._previous = set_active_injector(self)
        return self

    def __exit__(self, *exc_info) -> None:
        set_active_injector(self._previous)
        self._previous = None

    # -- the hook called from FPContext.inject ---------------------------
    def apply(self, site: str, value, fmt: NumberFormat):
        """Possibly corrupt *value* (scalar or ndarray) at *site*.

        Consumes one uniform draw per element whenever the site is
        enabled, so the random stream advances identically whether or
        not any individual element is hit.
        """
        if site not in self.sites:
            return value
        visit = self.visits
        self.visits += 1
        if self.max_faults is not None and self.count >= self.max_faults:
            return value

        scalar = np.isscalar(value) or np.ndim(value) == 0
        arr = np.atleast_1d(np.asarray(value, dtype=np.float64))
        hits = np.flatnonzero(self._rng.random(arr.size) < self.rate)
        if hits.size == 0:
            return value
        if self.max_faults is not None:
            hits = hits[:self.max_faults - self.count]

        out = arr.copy()
        flat = out.reshape(-1)
        for idx in hits:
            before = float(flat[idx])
            after = float(self.model.corrupt(before, fmt, self._rng))
            flat[idx] = after
            self.log.append(FaultRecord(
                serial=self.count, visit=visit, site=site, index=int(idx),
                before=before, after=after))
            if self.on_fault == "raise":
                raise FaultInjected(
                    f"injected {self.model.name} fault at site {site!r} "
                    f"(element {idx}): {before!r} -> {after!r}",
                    site=site, index=(int(idx),), before=before, after=after)
        if scalar:
            return float(flat[0])
        return out.reshape(np.shape(value))

    # -- reporting -------------------------------------------------------
    def summary(self) -> dict:
        """Counts per site plus totals (for experiment CSVs / logs)."""
        per_site: dict[str, int] = {}
        for rec in self.log:
            per_site[rec.site] = per_site.get(rec.site, 0) + 1
        return {"seed": self.seed, "rate": self.rate,
                "model": self.model.name, "visits": self.visits,
                "faults": self.count, "per_site": per_site}

    def __repr__(self) -> str:
        return (f"<FaultInjector seed={self.seed} rate={self.rate} "
                f"model={self.model.name} sites={sorted(self.sites)} "
                f"faults={self.count}>")
