"""Wall-clock timeouts and retry pacing for the crash-safe runner.

Pure-Python per-operation rounding makes experiment runtime hard to
predict (a widened retry at full scale can take minutes), so the sweep
runner bounds each experiment with a wall-clock budget.  SIGALRM is the
only mechanism that can interrupt CPU-bound Python from within the same
process, so :func:`time_limit` degrades to a no-op off the main thread
or on platforms without it — the runner still gets crash isolation,
just not preemption.  :func:`time_limit` is therefore the *soft* layer
of the timeout contract: hung native code (or anything holding the GIL
off the main thread) sails straight past it.  The *hard* layer is the
parent-side watchdog of :mod:`repro.supervise.pool`, which enforces
the same budget externally with SIGTERM-then-SIGKILL on supervised
worker processes — see ``docs/robustness.md`` for the full contract.
"""

from __future__ import annotations

import contextlib
import signal
import threading
from typing import Iterable, Iterator

from ..errors import ExperimentTimeout

__all__ = ["time_limit", "backoff_delays", "jittered"]


def _can_use_sigalrm() -> bool:
    return (hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread())


@contextlib.contextmanager
def time_limit(seconds: float | None, label: str = "") -> Iterator[None]:
    """Raise :class:`~repro.errors.ExperimentTimeout` after *seconds*.

    ``None`` or a non-positive budget disables the limit.  Uses an
    interval timer (sub-second resolution) and restores the previous
    SIGALRM disposition on exit, so nesting an inner, tighter limit
    inside an outer one behaves sensibly for the inner block.
    """
    if not seconds or seconds <= 0 or not _can_use_sigalrm():
        yield
        return

    what = f" ({label})" if label else ""

    def _on_alarm(signum, frame):
        raise ExperimentTimeout(
            f"wall-clock budget of {seconds:g}s exceeded{what}")

    previous_handler = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous_handler)


def backoff_delays(retries: int, base: float = 1.0,
                   factor: float = 2.0) -> Iterator[float]:
    """Exponential backoff schedule: base, base*factor, ... (*retries* long)."""
    delay = float(base)
    for _ in range(max(0, retries)):
        yield delay
        delay *= factor


def jittered(delays: Iterable[float], rng=None, low: float = 0.5,
             high: float = 1.5) -> Iterator[float]:
    """Multiply each delay by ``uniform(low, high)`` — retry desynching.

    The pooled retry path wraps :func:`backoff_delays` in this so that
    cells requeued by the same event (a dead worker taking several
    cells' retries with it, a burst of transient failures) don't all
    come back at the same instant.  *rng* is anything with a
    ``uniform`` method (``random.Random(seed)`` for deterministic
    schedules); the module-level :mod:`random` is used by default.
    """
    if rng is None:
        import random as rng  # type: ignore[no-redef]
    for delay in delays:
        yield delay * rng.uniform(low, high)
