"""Resilience layer: fault injection, breakdown recovery, crash safety.

Three coupled sub-systems turn the paper's subject — numerical failure
— into a first-class, testable dimension of the reproduction:

* :mod:`~repro.resilience.faults` — seeded silent-data-corruption
  injection at named :class:`~repro.arith.context.FPContext` sites;
* :mod:`~repro.resilience.recovery` — rescale-then-widen escalation
  ladders for Cholesky, CG and iterative refinement, with structured
  traces;
* :mod:`~repro.resilience.atomic` / :mod:`~repro.resilience.manifest` /
  :mod:`~repro.resilience.isolation` — the crash-safe experiment
  runner's building blocks (atomic artifact writes, the ``--resume``
  manifest, wall-clock limits).

See ``docs/robustness.md`` for the full model.
"""

from .atomic import atomic_open, atomic_write_text
from .faults import (SITES, BitFlip, FaultInjector, FaultModel,
                     FaultRecord, Perturb, SpecialValue, get_model)
from .isolation import backoff_delays, time_limit
from .manifest import MANIFEST_NAME, RunManifest
from .recovery import (DEFAULT_WIDENINGS, RecoveryAttempt, RecoveryPolicy,
                       RecoveryTrace, cg_with_recovery,
                       cholesky_with_recovery, ir_with_recovery)

__all__ = [
    # faults
    "SITES", "FaultInjector", "FaultModel", "FaultRecord",
    "BitFlip", "SpecialValue", "Perturb", "get_model",
    # recovery
    "DEFAULT_WIDENINGS", "RecoveryPolicy", "RecoveryAttempt",
    "RecoveryTrace", "cholesky_with_recovery", "cg_with_recovery",
    "ir_with_recovery",
    # crash safety
    "atomic_open", "atomic_write_text", "RunManifest", "MANIFEST_NAME",
    "time_limit", "backoff_delays",
]
