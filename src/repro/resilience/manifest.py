"""The JSON run manifest behind ``repro-experiments --resume``.

After every experiment the runner records its outcome here with an
atomic write, so a sweep killed at any instant leaves a manifest that
is both syntactically valid and consistent with the artifacts on disk
(artifact CSVs are themselves written atomically *before* the manifest
entry that points at them).  ``--resume`` then skips any experiment
whose entry says ``completed`` at the same scale and whose artifact
still exists.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any

from .atomic import atomic_write_text

__all__ = ["RunManifest", "MANIFEST_NAME"]

#: default manifest filename inside the results directory
MANIFEST_NAME = "run_manifest.json"

_VERSION = 1


class RunManifest:
    """Per-experiment completion records, persisted atomically."""

    def __init__(self, path: str):
        self.path = path
        self.data: dict[str, Any] = {"version": _VERSION, "runs": {}}

    # -- persistence -----------------------------------------------------
    def load(self) -> "RunManifest":
        """Read the manifest from disk; tolerates absence and corruption.

        A manifest that cannot be parsed is treated as empty rather
        than fatal — resuming conservatively (re-running experiments)
        is always safe, failing the whole sweep is not.
        """
        try:
            with open(self.path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return self
        if isinstance(data, dict) and isinstance(data.get("runs"), dict):
            self.data = {"version": _VERSION, "runs": dict(data["runs"])}
        return self

    def save(self) -> str:
        return atomic_write_text(
            self.path, json.dumps(self.data, indent=2, sort_keys=True) + "\n")

    # -- records ---------------------------------------------------------
    def get(self, experiment_id: str) -> dict | None:
        entry = self.data["runs"].get(experiment_id)
        return dict(entry) if isinstance(entry, dict) else None

    def record(self, experiment_id: str, *, status: str, scale: str,
               duration: float, csv_path: str | None = None,
               error: str | None = None, attempts: int = 1) -> None:
        """Record one experiment outcome and persist immediately."""
        self.data["runs"][experiment_id] = {
            "status": status,            # completed | failed | timeout
            "scale": scale,
            "duration_s": round(float(duration), 3),
            "csv_path": csv_path,
            "error": error,
            "attempts": int(attempts),
            "finished_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        }
        self.save()

    def is_complete(self, experiment_id: str, scale: str) -> bool:
        """True when the experiment finished at *scale* and its artifact
        (if it produced one) still exists on disk."""
        entry = self.get(experiment_id)
        if not entry or entry.get("status") != "completed":
            return False
        if entry.get("scale") != scale:
            return False
        csv_path = entry.get("csv_path")
        if csv_path and not os.path.exists(csv_path):
            return False
        return True

    def __repr__(self) -> str:
        runs = self.data["runs"]
        done = sum(1 for e in runs.values()
                   if e.get("status") == "completed")
        return (f"<RunManifest {self.path!r}: {done}/{len(runs)} "
                f"completed>")
