"""The JSON run manifest behind ``repro-experiments --resume``.

After every experiment the runner records its outcome here with an
atomic write, so a sweep killed at any instant leaves a manifest that
is both syntactically valid and consistent with the artifacts on disk
(artifact CSVs are themselves written atomically *before* the manifest
entry that points at them).  ``--resume`` then skips any experiment
whose entry says ``completed`` at the same scale and whose artifact
still exists.

Since the cell engine (PR 2) the manifest also records one entry per
experiment **cell** — a single ``(solver, matrix, format)`` run —
under ``cells``, with its wall-clock, owning experiments and outcome.
That is what makes ``--timeout`` / ``--retries`` / ``--resume``
operate at cell granularity: a sweep killed mid-experiment keeps every
finished cell (they are persisted by the result cache as they
complete) and a resumed run re-executes only the unfinished ones.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any

from .atomic import atomic_write_text

__all__ = ["RunManifest", "MANIFEST_NAME"]

#: default manifest filename inside the results directory
MANIFEST_NAME = "run_manifest.json"

_VERSION = 2


class RunManifest:
    """Per-experiment and per-cell completion records, atomic on disk."""

    def __init__(self, path: str):
        self.path = path
        self.data: dict[str, Any] = {"version": _VERSION, "runs": {},
                                     "cells": {}}

    # -- persistence -----------------------------------------------------
    def load(self) -> "RunManifest":
        """Read the manifest from disk; tolerates absence and corruption.

        A manifest that cannot be parsed is treated as empty rather
        than fatal — resuming conservatively (re-running experiments)
        is always safe, failing the whole sweep is not.
        """
        try:
            with open(self.path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return self
        if isinstance(data, dict) and isinstance(data.get("runs"), dict):
            cells = data.get("cells")
            # keep unknown top-level sections (telemetry/cache payloads
            # from newer writers) instead of silently dropping them
            self.data = {**data, "version": _VERSION,
                         "runs": dict(data["runs"]),
                         "cells": (dict(cells) if isinstance(cells, dict)
                                   else {})}
        return self

    def save(self) -> str:
        return atomic_write_text(
            self.path, json.dumps(self.data, indent=2, sort_keys=True) + "\n")

    # -- records ---------------------------------------------------------
    def get(self, experiment_id: str) -> dict | None:
        entry = self.data["runs"].get(experiment_id)
        return dict(entry) if isinstance(entry, dict) else None

    def record(self, experiment_id: str, *, status: str, scale: str,
               duration: float, csv_path: str | None = None,
               error: str | None = None, attempts: int = 1,
               extra: dict | None = None) -> None:
        """Record one experiment outcome and persist immediately."""
        entry = {
            "status": status,            # completed | failed | timeout
            "scale": scale,
            "duration_s": round(float(duration), 3),
            "csv_path": csv_path,
            "error": error,
            "attempts": int(attempts),
            "finished_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        }
        if extra:
            entry.update(extra)
        self.data["runs"][experiment_id] = entry
        self.save()

    # -- cells -----------------------------------------------------------
    def get_cell(self, cell_id: str) -> dict | None:
        entry = self.data["cells"].get(cell_id)
        return dict(entry) if isinstance(entry, dict) else None

    def record_cell(self, cell_id: str, *, status: str, scale: str,
                    duration: float, experiments: tuple[str, ...] = (),
                    error: str | None = None, attempts: int = 1,
                    save: bool = True) -> None:
        """Record one cell outcome; persists immediately by default."""
        self.data["cells"][cell_id] = {
            # completed | cached | failed | timeout | poisoned
            # (poisoned: quarantined by the supervised pool after
            # repeatedly killing its worker — see repro.supervise)
            "status": status,
            "scale": scale,
            "duration_s": round(float(duration), 3),
            "experiments": sorted(experiments),
            "error": error,
            "attempts": int(attempts),
            "finished_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        }
        if save:
            self.save()

    # -- telemetry sidecars ----------------------------------------------
    def record_section(self, name: str, payload: Any,
                       save: bool = True) -> None:
        """Attach a free-form top-level section (``trace``, ``cache``).

        Used by the runner to persist the traced-run summary (trace
        file path, per-cell time aggregation) and the sweep's cache
        hit/miss/invalidation counts alongside the run records.
        """
        if name in ("version", "runs", "cells"):
            raise ValueError(f"section name {name!r} is reserved")
        self.data[name] = payload
        if save:
            self.save()

    def get_section(self, name: str) -> Any:
        """A previously recorded free-form section, or None."""
        return self.data.get(name)

    def is_cell_complete(self, cell_id: str, scale: str) -> bool:
        entry = self.get_cell(cell_id)
        return bool(entry and entry.get("status") in ("completed",
                                                      "cached")
                    and entry.get("scale") == scale)

    def is_complete(self, experiment_id: str, scale: str) -> bool:
        """True when the experiment finished at *scale* and its artifact
        (if it produced one) still exists on disk."""
        entry = self.get(experiment_id)
        if not entry or entry.get("status") != "completed":
            return False
        if entry.get("scale") != scale:
            return False
        csv_path = entry.get("csv_path")
        if csv_path and not os.path.exists(csv_path):
            return False
        return True

    def __repr__(self) -> str:
        runs = self.data["runs"]
        done = sum(1 for e in runs.values()
                   if e.get("status") == "completed")
        return (f"<RunManifest {self.path!r}: {done}/{len(runs)} "
                f"completed>")
