"""Breakdown recovery — rescale-then-widen escalation ladders.

The paper's Table II '-' entries (Cholesky breakdowns) and Fig. 6
missing curves (CG divergence) are terminal in the reproduction's base
solvers.  Follow-up work (Hunhold & Quinlan on sparse solvers, Quinlan
& Omtzigt on low-precision-posit IR) shows the *recovery policy* — when
to rescale, when to widen the format — decides whether a low-precision
solver is usable at all.  This module makes that policy explicit:

1. **native** — run the solver in the requested format as-is;
2. **rescale** — on breakdown/divergence/stagnation, retry after the
   solver-appropriate rescaling: the paper's Algorithm 3 (diagonal-mean
   power-of-two) for Cholesky, the §V-B ∞-norm scaling for CG, and the
   Higham–Pranesh–Zounon squeeze for iterative refinement;
3. **widen** — retry (still rescaled) in progressively wider formats:
   Posit(16,1) → Posit(24,1) → Posit(32,2) and Float16 → Float32 by
   default.

Every attempt is recorded in a structured :class:`RecoveryTrace`; the
``ext-recovery`` experiment reports which rung rescues which Table II
cell.  Strict callers set ``RecoveryPolicy(strict=True)`` to get
:class:`~repro.errors.RecoveryExhausted` instead of a failed trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

import numpy as np

from ..arith.context import FPContext, get_instrument
from ..errors import FactorizationError, RecoveryExhausted, ScalingError
from ..formats.registry import get_format
from ..linalg.cg import conjugate_gradient
from ..linalg.cholesky import cholesky_solve
from ..linalg.ir import iterative_refinement
from ..scaling.diagonal_mean import scale_by_diagonal_mean
from ..scaling.higham import higham_rescale
from ..scaling.power_of_two import scale_to_inf_norm

__all__ = [
    "DEFAULT_WIDENINGS", "RecoveryAttempt", "RecoveryTrace",
    "RecoveryPolicy", "cholesky_with_recovery", "cg_with_recovery",
    "ir_with_recovery",
]

#: default widening ladders, by starting-format name.  16-bit formats
#: step through a 24-bit rung before committing to 32 bits; 32-bit
#: formats escalate to the float64 working precision as a last resort.
DEFAULT_WIDENINGS: dict[str, tuple[str, ...]] = {
    "fp16": ("fp32",),
    "bf16": ("fp32",),
    "posit16es1": ("posit24es1", "posit32es2"),
    "posit16es2": ("posit24es2", "posit32es2"),
    "posit24es1": ("posit32es2",),
    "posit24es2": ("posit32es2",),
    "fp32": ("fp64",),
    "posit32es2": ("posit32es3", "fp64"),
    "posit32es3": ("fp64",),
}


@dataclass(frozen=True)
class RecoveryAttempt:
    """One rung of the ladder, as actually executed."""

    rung: str        # "native" | "rescale" | "widen:<fmt>"
    fmt: str         # format the attempt ran in
    rescaled: bool
    succeeded: bool
    metric: float    # solver quality metric (backward error / residual)
    detail: str = ""  # failure reason, or "" on success


@dataclass
class RecoveryTrace:
    """Structured record of a recovery ladder run."""

    solver: str
    start_format: str
    attempts: list[RecoveryAttempt] = field(default_factory=list)
    result: Any = None  # the successful solver result, or None

    @property
    def succeeded(self) -> bool:
        return any(a.succeeded for a in self.attempts)

    @property
    def rescue_rung(self) -> str:
        """Rung of the first success: ``none`` when the native run
        already succeeded, ``rescale`` / ``widen:<fmt>`` for genuine
        rescues, ``-`` when the whole ladder failed (Table II style)."""
        for a in self.attempts:
            if a.succeeded:
                return "none" if a.rung == "native" else a.rung
        return "-"

    @property
    def final_format(self) -> str | None:
        """Format of the successful attempt (None when exhausted)."""
        for a in self.attempts:
            if a.succeeded:
                return a.fmt
        return None

    def record(self, attempt: RecoveryAttempt) -> None:
        self.attempts.append(attempt)

    def __repr__(self) -> str:
        steps = " -> ".join(
            f"{a.rung}[{'ok' if a.succeeded else 'fail'}]"
            for a in self.attempts) or "(no attempts)"
        return f"<RecoveryTrace {self.solver}/{self.start_format}: {steps}>"


@dataclass(frozen=True)
class RecoveryPolicy:
    """What the escalation ladder is allowed to do.

    Attributes
    ----------
    rescale:
        Try the solver-appropriate rescaling rung before widening.
    widen:
        Try wider formats after (rescaling is kept on while widening —
        widening fixes precision, rescaling fixes range, and the
        failures the paper tabulates usually involve both).
    widenings:
        Starting-format → widening sequence; defaults to
        :data:`DEFAULT_WIDENINGS` (unlisted formats simply don't widen).
    max_attempts:
        Hard cap on ladder length.
    strict:
        Raise :class:`~repro.errors.RecoveryExhausted` when every rung
        fails, instead of returning a failed trace.
    """

    rescale: bool = True
    widen: bool = True
    widenings: Mapping[str, tuple[str, ...]] | None = None
    max_attempts: int = 8
    strict: bool = False

    def ladder(self, fmt_name: str) -> Iterator[tuple[str, str, bool]]:
        """Yield ``(rung, format_name, rescaled)`` in escalation order."""
        count = 0
        for step in self._steps(fmt_name):
            if count >= self.max_attempts:
                return
            count += 1
            yield step

    def _steps(self, fmt_name: str) -> Iterator[tuple[str, str, bool]]:
        yield "native", fmt_name, False
        if self.rescale:
            yield "rescale", fmt_name, True
        if self.widen:
            table = (DEFAULT_WIDENINGS if self.widenings is None
                     else self.widenings)
            for wide in table.get(fmt_name, ()):
                yield f"widen:{wide}", wide, self.rescale


def _run_ladder(trace: RecoveryTrace, policy: RecoveryPolicy,
                fmt_name: str, attempt_fn) -> RecoveryTrace:
    """Drive *attempt_fn(rung, fmt, rescaled)* down the ladder.

    ``attempt_fn`` returns ``(succeeded, metric, detail, result)`` and
    may raise :class:`ReproError` subclasses (recorded as failures).
    Each rung additionally lands as a ``recovery`` event on the ambient
    telemetry tracer (when one is installed), so traced experiment runs
    show which ladder rungs fired without post-processing the results.
    """
    def emit(attempt: RecoveryAttempt) -> None:
        tracer = get_instrument("tracer")
        if tracer is not None:
            tracer.emit("solver", solver=trace.solver,
                        format=attempt.fmt, event="recovery",
                        rung=attempt.rung, rescaled=attempt.rescaled,
                        succeeded=attempt.succeeded,
                        detail=attempt.detail)

    for rung, fmt, rescaled in policy.ladder(fmt_name):
        try:
            ok, metric, detail, result = attempt_fn(rung, fmt, rescaled)
        except (FactorizationError, ScalingError) as exc:
            attempt = RecoveryAttempt(rung, fmt, rescaled, False,
                                      np.inf,
                                      f"{type(exc).__name__}: {exc}")
            trace.record(attempt)
            emit(attempt)
            continue
        attempt = RecoveryAttempt(rung, fmt, rescaled, ok, metric,
                                  detail)
        trace.record(attempt)
        emit(attempt)
        if ok:
            trace.result = result
            return trace
    if policy.strict:
        raise RecoveryExhausted(
            f"{trace.solver} recovery ladder exhausted for "
            f"{trace.start_format} ({len(trace.attempts)} attempts)",
            trace=trace)
    return trace


# ---------------------------------------------------------------------------
# Solver-specific ladders
# ---------------------------------------------------------------------------

def cholesky_with_recovery(fmt, A: np.ndarray, b: np.ndarray,
                           policy: RecoveryPolicy | None = None,
                           sum_order: str = "pairwise",
                           max_backward_error: float = np.inf
                           ) -> RecoveryTrace:
    """Direct Cholesky solve under the recovery ladder.

    Failure means :class:`~repro.errors.FactorizationError` or a
    non-finite (or above-threshold) backward error; the rescale rung is
    the paper's Algorithm 3 (diagonal-mean power-of-two scaling).
    Returns a :class:`RecoveryTrace` whose ``result`` is the successful
    :class:`~repro.linalg.cholesky.CholeskyResult` (or None).
    """
    policy = policy or RecoveryPolicy()
    fmt_name = get_format(fmt).name
    A64 = np.asarray(A, dtype=np.float64)
    b64 = np.asarray(b, dtype=np.float64)
    trace = RecoveryTrace("cholesky", fmt_name)

    def attempt(rung: str, f: str, rescaled: bool):
        if rescaled:
            ss = scale_by_diagonal_mean(A64, b64)
            A_run, b_run = ss.A, ss.b
        else:
            A_run, b_run = A64, b64
        out = cholesky_solve(FPContext(f, sum_order), A_run, b_run)
        err = out.relative_backward_error
        ok = bool(np.isfinite(err) and err <= max_backward_error)
        return ok, float(err), "" if ok else f"backward error {err:.2e}", out

    return _run_ladder(trace, policy, fmt_name, attempt)


def cg_with_recovery(fmt, A: np.ndarray, b: np.ndarray,
                     policy: RecoveryPolicy | None = None,
                     rtol: float = 1e-5, max_iterations: int = 5000,
                     rescale_target: float = 2.0 ** 10,
                     **cg_kwargs) -> RecoveryTrace:
    """Conjugate gradient under the recovery ladder.

    Failure means divergence *or* budget exhaustion; the rescale rung
    is the paper's §V-B power-of-two ∞-norm scaling (target 2¹⁰).
    ``trace.result`` is the successful CGResult (solutions of rescaled
    runs solve the original system — both sides are scaled equally).
    """
    policy = policy or RecoveryPolicy()
    fmt_name = get_format(fmt).name
    A64 = np.asarray(A, dtype=np.float64)
    b64 = np.asarray(b, dtype=np.float64)
    trace = RecoveryTrace("cg", fmt_name)

    def attempt(rung: str, f: str, rescaled: bool):
        if rescaled:
            ss = scale_to_inf_norm(A64, b64, target=rescale_target)
            A_run, b_run = ss.A, ss.b
        else:
            A_run, b_run = A64, b64
        res = conjugate_gradient(FPContext(f), A_run, b_run, rtol=rtol,
                                 max_iterations=max_iterations,
                                 **cg_kwargs)
        detail = ("" if res.converged else
                  "diverged" if res.diverged else
                  f"budget exhausted after {res.iterations} iterations")
        return res.converged, float(res.relative_residual), detail, res

    return _run_ladder(trace, policy, fmt_name, attempt)


def ir_with_recovery(A: np.ndarray, b: np.ndarray, fmt,
                     policy: RecoveryPolicy | None = None,
                     max_iterations: int = 1000,
                     **ir_kwargs) -> RecoveryTrace:
    """Mixed-precision iterative refinement under the recovery ladder.

    Failure means a broken-down factorization, diverged/stagnated
    refinement, or an exhausted budget; the rescale rung is the Higham
    squeeze of Table III.  ``trace.result`` is the successful IRResult.
    """
    policy = policy or RecoveryPolicy()
    fmt_name = get_format(fmt).name
    A64 = np.asarray(A, dtype=np.float64)
    b64 = np.asarray(b, dtype=np.float64)
    trace = RecoveryTrace("ir", fmt_name)

    def attempt(rung: str, f: str, rescaled: bool):
        scaling = higham_rescale(A64, b64, f) if rescaled else None
        res = iterative_refinement(A64, b64, f, scaling=scaling,
                                   max_iterations=max_iterations,
                                   **ir_kwargs)
        ok = bool(res.converged)
        detail = "" if ok else (res.failure_reason or "did not converge")
        return ok, float(res.final_backward_error), detail, res

    return _run_ladder(trace, policy, fmt_name, attempt)
