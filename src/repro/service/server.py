"""The asyncio experiment server: one cache, one fleet, many clients.

:class:`ExperimentServer` listens on a unix socket or localhost TCP
and speaks the JSON-lines protocol of :mod:`repro.service.protocol`.
Every client shares three process-wide resources:

* the **content-addressed result cache** — a cell any client ever
  computed is a warm hit for every later client;
* the **in-flight table** — identical cells requested concurrently
  (by one client or many) are *coalesced* onto a single computation
  (singleflight keyed on ``(scale, cell_id)``), so a thundering herd
  of overlapping sweeps costs one grid, not N;
* the **supervised worker fleet** — a ``keep_alive``
  :class:`~repro.supervise.pool.SupervisedPool` per scale, whose
  workers (and their warm matrix caches) persist across batches and
  whose watchdog/respawn/quarantine machinery keeps one poisoned cell
  from sinking anybody's sweep.

Scheduling is **batched**: submitted cells gather for ``batch_delay``
seconds (coalescing window), then run as one engine batch per scale.
Batches run on a dedicated thread through the very same
:func:`repro.experiments.engine.execute_cells` call the runner CLI
uses — which is the determinism argument: a sweep through the service
produces byte-identical CSV artifacts to ``python -m repro.experiments
... --jobs N``, because both are that one engine and one assembler.

Backpressure is two bounded queues per client: at most
``max_pending_jobs`` jobs in flight (excess submits get a ``busy``
error; clients retry with the shared backoff schedule), and an event
queue of ``event_queue_size`` progress messages (a client that stops
reading loses *progress events*, counted in ``events_dropped`` — never
``accepted`` / ``result`` / ``error`` replies, which block the job
task instead).
"""

from __future__ import annotations

import asyncio
import contextlib
import sys
import time
from typing import Any

import numpy as np

from ..config import SCALES
from ..experiments.cache import cache_stats
from ..experiments.common import Cell
from ..experiments.engine import CellOutcome, execute_cells
from ..experiments.registry import get_experiment
from ..request import RunRequest
from ..telemetry.trace import span
from .protocol import (PROTOCOL_VERSION, Accepted, Bye, CellEvent,
                       ErrorReply, Hello, JobResult, ProtocolError,
                       StatusReply, StatusRequest, SubmitCells,
                       SubmitExperiments, SubmitQuantize, Welcome,
                       check_version, decode, encode)

__all__ = ["ExperimentServer", "ServiceStats"]

#: refuse quantize batches beyond this (one JSON line, one event loop)
_MAX_QUANTIZE_VALUES = 100_000


class ServiceStats:
    """Process-wide service counters, exported through ``status``."""

    __slots__ = ("connections", "requests", "jobs_submitted",
                 "jobs_completed", "jobs_failed", "jobs_rejected",
                 "cells_requested", "cells_computed", "cells_cached",
                 "cells_failed", "coalesce_hits", "batches",
                 "events_dropped", "max_queue_depth")

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class _Conn:
    """One client connection: its writer task and bounded queues."""

    def __init__(self, server: "ExperimentServer",
                 writer: asyncio.StreamWriter, name: str = "?"):
        self.server = server
        self.writer = writer
        self.name = name
        self.queue: asyncio.Queue = asyncio.Queue(
            maxsize=server.event_queue_size)
        self.active_jobs = 0
        self.closed = False

    async def send(self, message: Any) -> None:
        """Deliver a must-arrive message (blocks when the queue is full:
        backpressure lands on the sending job, not on the executor)."""
        if not self.closed:
            await self.queue.put(message)

    def post_event(self, message: Any) -> None:
        """Best-effort progress event; dropped (and counted) when the
        client has stopped draining its bounded queue."""
        if self.closed:
            return
        try:
            self.queue.put_nowait(message)
        except asyncio.QueueFull:
            self.server.stats.events_dropped += 1
        depth = self.queue.qsize()
        if depth > self.server.stats.max_queue_depth:
            self.server.stats.max_queue_depth = depth

    async def drain_to_socket(self) -> None:
        """Writer task body: serialize the queue onto the socket."""
        try:
            while True:
                message = await self.queue.get()
                if message is None:         # close sentinel
                    break
                self.writer.write(encode(message).encode("utf-8"))
                await self.writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            self.closed = True


class ExperimentServer:
    """Multi-tenant experiment service over the supervised cell engine.

    *request* carries the server-side execution knobs (jobs, timeout,
    retries, backoff, grace, max_worker_deaths) — one fleet, one
    contract; a submitted job's own :class:`~repro.request.RunRequest`
    chooses the *scale* (and is echoed back for provenance).  Listen
    on ``socket_path`` (unix domain socket) or ``host:port`` TCP;
    ``port=0`` picks a free port, readable from :attr:`address` after
    :meth:`start`.
    """

    def __init__(self, *, socket_path: str | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 request: RunRequest | None = None,
                 max_pending_jobs: int = 8,
                 event_queue_size: int = 256,
                 batch_delay: float = 0.05,
                 name: str = "repro.service"):
        if max_pending_jobs < 1:
            raise ValueError(f"max_pending_jobs must be >= 1, "
                             f"got {max_pending_jobs}")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.request = request if request is not None else RunRequest.make()
        self.max_pending_jobs = int(max_pending_jobs)
        self.event_queue_size = int(event_queue_size)
        self.batch_delay = float(batch_delay)
        self.name = name
        self.stats = ServiceStats()
        self.started_at: float | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._executor_task: asyncio.Task | None = None
        self._closing = False
        #: (scale_name, cell_id) → future resolving to a CellOutcome;
        #: the singleflight table every job's cells register through
        self._inflight: dict[tuple[str, str], asyncio.Future] = {}
        #: cells admitted but not yet dispatched in a batch
        self._queued: dict[tuple[str, str], Cell] = {}
        self._wakeup: asyncio.Event | None = None
        #: scale name → keep_alive SupervisedPool (jobs > 1 only)
        self._pools: dict[str, Any] = {}
        self._supervision_reports: list[dict] = []

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._wakeup = asyncio.Event()
        if self.socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=self.socket_path)
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=self.host, port=self.port)
            self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.time()
        self._executor_task = asyncio.create_task(self._executor_loop())

    @property
    def address(self) -> str:
        """The client-facing address string (``unix:path`` / ``host:port``)."""
        if self.socket_path is not None:
            return f"unix:{self.socket_path}"
        return f"{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting, finish nothing new, shut the fleet down."""
        self._closing = True
        if self._wakeup is not None:
            self._wakeup.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._executor_task is not None:
            with contextlib.suppress(asyncio.CancelledError):
                await self._executor_task
        # fail anything still unresolved so no client hangs forever
        for fut in self._inflight.values():
            if not fut.done():
                fut.cancel()
        self._inflight.clear()
        self._queued.clear()
        pools, self._pools = dict(self._pools), {}
        if pools:
            await asyncio.to_thread(
                lambda: [p.shutdown() for p in pools.values()])

    # -- connection handling ---------------------------------------------
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self.stats.connections += 1
        conn = _Conn(self, writer)
        writer_task = asyncio.create_task(conn.drain_to_socket())
        try:
            # handshake: Hello must be the first line
            try:
                hello = decode(await reader.readline())
                if not isinstance(hello, Hello):
                    raise ProtocolError(
                        f"expected hello, got {type(hello).__name__}",
                        hint="open every connection with a hello message")
                check_version(hello.version)
            except ProtocolError as exc:
                await conn.send(ErrorReply(None, str(exc), exc.hint))
                return
            conn.name = hello.client
            await conn.send(Welcome(server=self.name))

            while not self._closing:
                line = await reader.readline()
                if not line:
                    break
                self.stats.requests += 1
                try:
                    message = decode(line)
                except ProtocolError as exc:
                    await conn.send(ErrorReply(None, str(exc), exc.hint))
                    continue
                if isinstance(message, Bye):
                    break
                with span("service.request",
                          type=type(message).__name__):
                    await self._dispatch(conn, message)
        except (ConnectionError, OSError):
            pass
        finally:
            await conn.queue.put(None)
            with contextlib.suppress(Exception):
                await writer_task
            conn.closed = True
            with contextlib.suppress(Exception):
                writer.close()

    async def _dispatch(self, conn: _Conn, message: Any) -> None:
        if isinstance(message, (SubmitExperiments, SubmitCells)):
            if conn.active_jobs >= self.max_pending_jobs:
                self.stats.jobs_rejected += 1
                await conn.send(ErrorReply(
                    message.id, "busy",
                    hint=f"per-client job bound ({self.max_pending_jobs}) "
                         f"reached; retry with backoff"))
                return
            conn.active_jobs += 1
            self.stats.jobs_submitted += 1
            asyncio.create_task(self._run_job(conn, message))
        elif isinstance(message, SubmitQuantize):
            await self._run_quantize(conn, message)
        elif isinstance(message, StatusRequest):
            await conn.send(StatusReply(message.id, self._status()))
        elif isinstance(message, (Hello, Welcome)):
            await conn.send(ErrorReply(
                None, "already connected",
                hint="hello is only valid as the first message"))
        else:
            await conn.send(ErrorReply(
                None, f"unexpected message {type(message).__name__}",
                hint="clients send submit-*/status/bye"))

    # -- jobs ------------------------------------------------------------
    async def _run_job(self, conn: _Conn,
                       message: SubmitExperiments | SubmitCells) -> None:
        try:
            await self._run_job_inner(conn, message)
        except Exception as exc:  # a job must never take the server down
            self.stats.jobs_failed += 1
            with contextlib.suppress(Exception):
                await conn.send(JobResult(
                    message.id, "failed",
                    error=f"{type(exc).__name__}: {exc}"))
        finally:
            conn.active_jobs -= 1

    async def _run_job_inner(self, conn: _Conn,
                             message: SubmitExperiments | SubmitCells
                             ) -> None:
        request = message.request
        scale = request.run_scale
        experiment_ids: tuple[str, ...] = ()
        if isinstance(message, SubmitExperiments):
            experiment_ids = tuple(dict.fromkeys(message.experiments))
            try:
                specs = [get_experiment(eid) for eid in experiment_ids]
            except KeyError as exc:
                self.stats.jobs_failed += 1
                await conn.send(ErrorReply(
                    message.id, str(exc),
                    hint="see `python -m repro.experiments list`"))
                return
            cells = [c for spec in specs
                     for c in spec.enumerate_cells(scale)]
        else:
            cells = [spec.to_cell() for spec in message.cells]
        cells = list(dict.fromkeys(cells))
        await conn.send(Accepted(message.id, cells=len(cells)))
        self.stats.cells_requested += len(cells)

        # register every cell with the singleflight table
        waits: list[tuple[Cell, asyncio.Future, bool]] = []
        for cell in cells:
            key = (scale.name, cell.cell_id)
            fut = self._inflight.get(key)
            coalesced = fut is not None
            if coalesced:
                self.stats.coalesce_hits += 1
            else:
                fut = self._loop.create_future()
                self._inflight[key] = fut
                self._queued[key] = cell
            waits.append((cell, fut, coalesced))
        if self._queued:
            self._wakeup.set()

        # stream outcomes in submission order
        tally = {"completed": 0, "cached": 0, "failed": 0, "timeout": 0,
                 "poisoned": 0, "coalesced": 0}
        failures: list[str] = []
        for seq, (cell, fut, coalesced) in enumerate(waits, start=1):
            try:
                outcome: CellOutcome = await fut
            except asyncio.CancelledError:
                raise RuntimeError("server shutting down") from None
            status = outcome.status
            tally[status] = tally.get(status, 0) + 1
            if coalesced:
                tally["coalesced"] += 1
            if not outcome.ok:
                failures.append(f"{cell.cell_id}: {status}"
                                + (f" ({outcome.error})"
                                   if outcome.error else ""))
            conn.post_event(CellEvent(
                message.id, seq, cell.cell_id, status,
                duration=round(outcome.duration, 4),
                coalesced=coalesced, error=outcome.error))

        # phase 2: assemble experiment artifacts from the warm cache
        results: dict[str, Any] = {}
        ok = not failures
        for eid in experiment_ids:
            if failures:
                results[eid] = {"status": "failed", "csv_path": None,
                                "error": f"{len(failures)} cell(s) "
                                         f"failed: {failures[0]}"}
                continue
            try:
                with span("service.assemble", experiment=eid):
                    result = await asyncio.to_thread(
                        self._assemble, eid, scale)
                results[eid] = {"status": "completed",
                                "csv_path": result.csv_path,
                                "error": None}
            except Exception as exc:
                ok = False
                results[eid] = {"status": "failed", "csv_path": None,
                                "error": f"{type(exc).__name__}: {exc}"}
        if ok:
            self.stats.jobs_completed += 1
        else:
            self.stats.jobs_failed += 1
        await conn.send(JobResult(
            message.id, "completed" if ok else "failed",
            experiments=results, cells=tally,
            error="; ".join(failures[:3]) or None))

    @staticmethod
    def _assemble(eid: str, scale) -> Any:
        from ..experiments.runner import run_experiment

        return run_experiment(eid, scale=scale, quiet=True)

    async def _run_quantize(self, conn: _Conn,
                            message: SubmitQuantize) -> None:
        grouped = any(isinstance(v, (tuple, list))
                      for v in message.values)
        total = (sum(len(v) if isinstance(v, (tuple, list)) else 1
                     for v in message.values) if grouped
                 else len(message.values))
        if total > _MAX_QUANTIZE_VALUES:
            await conn.send(ErrorReply(
                message.id,
                f"quantize batch too large ({total} > "
                f"{_MAX_QUANTIZE_VALUES})",
                hint="split the batch across several requests"))
            return
        try:
            from ..arith.context import FPContext

            ctx = FPContext(message.fmt)
            if grouped:
                # one rounding call for the whole group batch
                # (FPContext.quantize_many; element-identical to
                # rounding each group separately)
                arrays = ctx.quantize_many(
                    [np.asarray(v, dtype=np.float64)
                     for v in message.values])
                values = tuple(
                    tuple(float(x) for x in np.atleast_1d(a))
                    for a in arrays)
            else:
                rounded = np.asarray(ctx.round(
                    np.asarray(message.values, dtype=np.float64)))
                values = tuple(float(v)
                               for v in np.atleast_1d(rounded))
        except Exception as exc:
            await conn.send(ErrorReply(
                message.id, f"{type(exc).__name__}: {exc}",
                hint="see repro.formats.available_formats() for names"))
            return
        self.stats.jobs_submitted += 1
        self.stats.jobs_completed += 1
        await conn.send(JobResult(message.id, "completed", values=values))

    # -- the batch executor ----------------------------------------------
    async def _executor_loop(self) -> None:
        """Gather queued cells, run one engine batch per scale, settle."""
        assert self._wakeup is not None
        while not self._closing:
            try:
                await asyncio.wait_for(self._wakeup.wait(), timeout=0.5)
            except asyncio.TimeoutError:
                continue
            self._wakeup.clear()
            if self._closing:
                break
            # the coalescing window: let concurrent submits pile in
            await asyncio.sleep(self.batch_delay)
            while self._queued and not self._closing:
                scale_name = next(iter(self._queued))[0]
                keys = [k for k in self._queued if k[0] == scale_name]
                batch = [self._queued.pop(k) for k in keys]
                self.stats.batches += 1
                with span("service.batch", scale=scale_name,
                          cells=len(batch)):
                    await asyncio.to_thread(self._run_batch, scale_name,
                                            batch)

    def _pool_for(self, scale_name: str):
        """The keep-alive fleet for one scale (None when jobs == 1)."""
        if self.request.jobs <= 1:
            return None
        pool = self._pools.get(scale_name)
        if pool is None:
            from ..supervise.pool import SupervisedPool

            pool = SupervisedPool(
                self.request.jobs, SCALES[scale_name],
                timeout=self.request.timeout, grace=self.request.grace,
                retries=self.request.retries,
                backoff=self.request.backoff,
                max_worker_deaths=self.request.max_worker_deaths,
                keep_alive=True)
            self._pools[scale_name] = pool
        return pool

    def _run_batch(self, scale_name: str, batch: list[Cell]) -> None:
        """Thread body: one engine batch; outcomes marshalled back."""
        scale = SCALES[scale_name]

        def on_outcome(outcome: CellOutcome) -> None:
            self._loop.call_soon_threadsafe(self._settle, scale_name,
                                            outcome)

        def on_report(report) -> None:
            payload = {"scale": scale_name, **report.as_dict()}
            self._loop.call_soon_threadsafe(
                self._supervision_reports.append, payload)

        try:
            execute_cells(
                batch, scale, jobs=self.request.jobs,
                timeout=self.request.timeout,
                retries=self.request.retries,
                backoff=self.request.backoff, grace=self.request.grace,
                max_worker_deaths=self.request.max_worker_deaths,
                on_outcome=on_outcome, on_report=on_report,
                pool=self._pool_for(scale_name))
        except Exception as exc:  # engine is defensive; belt and braces
            print(f"!! service batch failed "
                  f"({type(exc).__name__}: {exc})", file=sys.stderr)
            for cell in batch:
                self._loop.call_soon_threadsafe(
                    self._settle, scale_name,
                    CellOutcome(cell, "failed", 0.0,
                                f"batch error: {exc}"))

    def _settle(self, scale_name: str, outcome: CellOutcome) -> None:
        """Event-loop side: resolve the cell's singleflight future."""
        if outcome.status == "completed":
            self.stats.cells_computed += 1
        elif outcome.status == "cached":
            self.stats.cells_cached += 1
        else:
            self.stats.cells_failed += 1
        fut = self._inflight.pop((scale_name, outcome.cell.cell_id),
                                 None)
        if fut is not None and not fut.done():
            fut.set_result(outcome)

    # -- status ----------------------------------------------------------
    def _status(self) -> dict[str, Any]:
        return {
            "server": self.name,
            "address": self.address,
            "protocol": PROTOCOL_VERSION,
            "uptime_s": (round(time.time() - self.started_at, 1)
                         if self.started_at else 0.0),
            "jobs": self.request.jobs,
            "inflight_cells": len(self._inflight),
            "queued_cells": len(self._queued),
            "pools": {name: pool.report.as_dict()
                      for name, pool in self._pools.items()},
            "supervision_reports": len(self._supervision_reports),
            "cache": cache_stats().as_dict(),
            **self.stats.as_dict(),
        }
