"""Client library for the experiment service: async and sync variants.

:class:`AsyncClient` is the native surface — a thin multiplexer over
one socket that can hold several jobs in flight and streams per-cell
progress through ``on_event`` callbacks.  :class:`Client` wraps it for
synchronous code (and the ``python -m repro.service submit`` CLI) by
owning a private event loop on a background thread; it additionally
honors the service's backpressure contract out of the box, retrying
``busy`` rejections with the engine's jittered exponential backoff
schedule.

Addresses are strings: ``unix:/path/to.sock`` for a unix domain
socket, ``host:port`` for TCP.

>>> from repro.service.client import Client
>>> with Client("unix:/tmp/repro.sock") as c:        # doctest: +SKIP
...     result = c.submit_experiments(["fig6"], scale="smoke")
...     print(result.experiments["fig6"]["csv_path"])
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from typing import Any, Callable, Iterable, Sequence

from ..experiments.common import Cell
from ..request import RunRequest
from ..resilience.isolation import backoff_delays, jittered
from .protocol import (Accepted, Bye, CellEvent, CellSpec, ErrorReply,
                       Hello, JobResult, ProtocolError, StatusReply,
                       StatusRequest, SubmitCells, SubmitExperiments,
                       SubmitQuantize, Welcome, decode, encode)

__all__ = ["AsyncClient", "Client", "ServiceError", "BusyError",
           "parse_address"]


class ServiceError(Exception):
    """The server rejected a request (carries its hint, if any)."""

    def __init__(self, message: str, hint: str | None = None):
        super().__init__(message + (f" (hint: {hint})" if hint else ""))
        self.error = message
        self.hint = hint


class BusyError(ServiceError):
    """Backpressure: the per-client job bound is reached; retry later."""


def parse_address(address: str) -> tuple[str, Any]:
    """``unix:/path`` → ``("unix", path)``; ``host:port`` → ``("tcp", (h, p))``."""
    if address.startswith("unix:"):
        return "unix", address[len("unix:"):]
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"bad service address {address!r}; expected 'unix:/path' "
            f"or 'host:port'")
    return "tcp", (host or "127.0.0.1", int(port))


class AsyncClient:
    """One connection, many concurrent jobs, replies routed by id."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, name: str):
        self._reader = reader
        self._writer = writer
        self.name = name
        self._ids = itertools.count(1)
        self._routes: dict[str, asyncio.Queue] = {}
        self._reader_task: asyncio.Task | None = None
        self._closed = False

    # -- lifecycle -------------------------------------------------------
    @classmethod
    async def connect(cls, address: str,
                      name: str = "client") -> "AsyncClient":
        kind, where = parse_address(address)
        if kind == "unix":
            reader, writer = await asyncio.open_unix_connection(where)
        else:
            reader, writer = await asyncio.open_connection(*where)
        client = cls(reader, writer, name)
        await client._send(Hello(client=name))
        reply = decode(await reader.readline())
        if isinstance(reply, ErrorReply):
            writer.close()
            raise ServiceError(reply.error, reply.hint)
        if not isinstance(reply, Welcome):
            writer.close()
            raise ProtocolError(
                f"expected welcome, got {type(reply).__name__}")
        client._reader_task = asyncio.create_task(client._read_loop())
        return client

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            await self._send(Bye())
        except (ConnectionError, OSError):
            pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
        try:
            self._writer.close()
        except Exception:
            pass

    # -- plumbing --------------------------------------------------------
    async def _send(self, message: Any) -> None:
        self._writer.write(encode(message).encode("utf-8"))
        await self._writer.drain()

    async def _read_loop(self) -> None:
        terminal: Exception = ConnectionError("service connection closed")
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                message = decode(line)
                job_id = getattr(message, "id", None)
                queue = self._routes.get(job_id)
                if queue is None and job_id is None:
                    # connection-level error: fan out to every waiter
                    for q in self._routes.values():
                        q.put_nowait(message)
                    continue
                if queue is not None:
                    queue.put_nowait(message)
        except (asyncio.CancelledError, ConnectionError, OSError):
            pass
        except ProtocolError as exc:    # undecodable reply: surface it
            terminal = exc
        finally:
            for q in self._routes.values():
                q.put_nowait(terminal)

    async def _roundtrip(self, message: Any,
                         on_event: Callable[[CellEvent], None] | None
                         = None) -> JobResult | StatusReply:
        """Send one identified request; pump replies to its terminal."""
        queue: asyncio.Queue = asyncio.Queue()
        self._routes[message.id] = queue
        try:
            await self._send(message)
            while True:
                reply = await queue.get()
                if isinstance(reply, Exception):
                    raise reply
                if isinstance(reply, ErrorReply):
                    if reply.error == "busy":
                        raise BusyError(reply.error, reply.hint)
                    raise ServiceError(reply.error, reply.hint)
                if isinstance(reply, Accepted):
                    continue
                if isinstance(reply, CellEvent):
                    if on_event is not None:
                        on_event(reply)
                    continue
                return reply
        finally:
            del self._routes[message.id]

    def _next_id(self) -> str:
        return f"{self.name}-{next(self._ids)}"

    @staticmethod
    def _request(request: RunRequest | None, scale, knobs) -> RunRequest:
        if request is None:
            return RunRequest.make(scale=scale, **knobs)
        if scale is not None or knobs:
            raise TypeError("pass either a RunRequest or loose knobs, "
                            "not both")
        return request

    # -- the API ---------------------------------------------------------
    async def submit_experiments(
            self, experiments: Sequence[str],
            request: RunRequest | None = None, *, scale=None,
            on_event: Callable[[CellEvent], None] | None = None,
            **knobs: Any) -> JobResult:
        """Run registered experiments; returns the terminal JobResult."""
        message = SubmitExperiments(
            self._next_id(), tuple(experiments),
            self._request(request, scale, knobs))
        return await self._roundtrip(message, on_event)

    async def submit_cells(
            self, cells: Iterable[Cell | CellSpec],
            request: RunRequest | None = None, *, scale=None,
            on_event: Callable[[CellEvent], None] | None = None,
            **knobs: Any) -> JobResult:
        """Run an explicit cell set (results land in the shared cache)."""
        specs = tuple(c if isinstance(c, CellSpec) else
                      CellSpec.from_cell(c) for c in cells)
        message = SubmitCells(self._next_id(), specs,
                              self._request(request, scale, knobs))
        return await self._roundtrip(message, on_event)

    async def quantize(self, fmt: str,
                       values: Iterable[float]) -> tuple[float, ...]:
        """Round *values* into *fmt* on the server."""
        message = SubmitQuantize(self._next_id(), fmt,
                                 tuple(float(v) for v in values))
        result = await self._roundtrip(message)
        assert isinstance(result, JobResult)
        return tuple(result.values or ())

    async def quantize_many(
            self, fmt: str, arrays: Iterable[Iterable[float]]
    ) -> tuple[tuple[float, ...], ...]:
        """Round several value groups into *fmt* in one request.

        The server rounds the whole batch in a single
        :meth:`repro.FPContext.quantize_many` call — element-identical
        to one :meth:`quantize` per group, one round-trip total.
        """
        message = SubmitQuantize(
            self._next_id(), fmt,
            tuple(tuple(float(v) for v in group) for group in arrays))
        result = await self._roundtrip(message)
        assert isinstance(result, JobResult)
        return tuple(tuple(g) for g in (result.values or ()))

    async def status(self) -> dict[str, Any]:
        """The server's live counters and queue depths."""
        reply = await self._roundtrip(StatusRequest(self._next_id()))
        assert isinstance(reply, StatusReply)
        return dict(reply.stats)


class Client:
    """Synchronous façade over :class:`AsyncClient`.

    Owns a private event loop on a daemon thread, so it works from any
    synchronous context (tests, notebooks, the submit CLI).  ``busy``
    rejections are retried automatically with the engine's jittered
    exponential backoff (*busy_retries* attempts, base
    *busy_backoff* seconds) — the client side of the service's
    backpressure contract.
    """

    def __init__(self, address: str, name: str = "client", *,
                 busy_retries: int = 5, busy_backoff: float = 0.2,
                 connect_timeout: float = 10.0):
        self.address = address
        self.busy_retries = int(busy_retries)
        self.busy_backoff = float(busy_backoff)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, daemon=True,
            name=f"repro-service-{name}")
        self._thread.start()
        self._async: AsyncClient = self._call(
            AsyncClient.connect(address, name), timeout=connect_timeout)

    def _call(self, coro, timeout: float | None = None):
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout)

    def _with_busy_retry(self, make_coro):
        delays = jittered(backoff_delays(self.busy_retries,
                                         base=self.busy_backoff))
        while True:
            try:
                return self._call(make_coro())
            except BusyError:
                delay = next(delays, None)
                if delay is None:
                    raise
                time.sleep(delay)

    # -- the API ---------------------------------------------------------
    def submit_experiments(self, experiments: Sequence[str],
                           request: RunRequest | None = None, *,
                           scale=None,
                           on_event: Callable[[CellEvent], None] | None
                           = None, **knobs: Any) -> JobResult:
        return self._with_busy_retry(
            lambda: self._async.submit_experiments(
                experiments, request, scale=scale, on_event=on_event,
                **knobs))

    def submit_cells(self, cells: Iterable[Cell | CellSpec],
                     request: RunRequest | None = None, *, scale=None,
                     on_event: Callable[[CellEvent], None] | None = None,
                     **knobs: Any) -> JobResult:
        cells = list(cells)
        return self._with_busy_retry(
            lambda: self._async.submit_cells(
                cells, request, scale=scale, on_event=on_event, **knobs))

    def quantize(self, fmt: str,
                 values: Iterable[float]) -> tuple[float, ...]:
        values = list(values)
        return self._call(self._async.quantize(fmt, values))

    def quantize_many(self, fmt: str, arrays: Iterable[Iterable[float]]
                      ) -> tuple[tuple[float, ...], ...]:
        arrays = [list(group) for group in arrays]
        return self._call(self._async.quantize_many(fmt, arrays))

    def status(self) -> dict[str, Any]:
        return self._call(self._async.status())

    def close(self) -> None:
        if self._loop.is_closed():
            return
        try:
            self._call(self._async.close(), timeout=5.0)
        except Exception:
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        self._loop.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
