"""repro.service — the multi-tenant experiment service.

A long-lived asyncio server (:class:`ExperimentServer`) that shares
one result cache, one singleflight in-flight table, and one supervised
worker fleet across every connected client, plus the versioned
JSON-lines wire protocol (:mod:`repro.service.protocol`) and the
client library (:mod:`repro.service.client`).

Shell usage::

    python -m repro.service serve --socket /tmp/repro.sock --jobs 4
    python -m repro.service submit --address unix:/tmp/repro.sock fig6
    python -m repro.service status --address unix:/tmp/repro.sock

Library usage::

    from repro.service import Client
    with Client("unix:/tmp/repro.sock") as c:
        result = c.submit_experiments(["fig6"], scale="smoke")
"""

from .client import AsyncClient, BusyError, Client, ServiceError
from .protocol import PROTOCOL_VERSION, ProtocolError
from .server import ExperimentServer, ServiceStats

__all__ = [
    "ExperimentServer", "ServiceStats",
    "AsyncClient", "Client", "ServiceError", "BusyError",
    "PROTOCOL_VERSION", "ProtocolError",
]
