"""The versioned wire protocol of the experiment service.

One JSON object per line (UTF-8, ``\\n``-terminated), each carrying a
``type`` tag — the dataclasses below are the complete message
vocabulary, and :data:`PROTOCOL_VERSION` names the revision a peer
speaks.  The first exchange on every connection is
:class:`Hello` → :class:`Welcome`; a version mismatch is rejected with
an explicit hint (:func:`check_version`) instead of letting two
revisions mis-parse each other mid-job.

Design rules:

* every message is a frozen dataclass with ``to_json()`` and
  ``from_json()`` — no free-form dicts cross the API boundary;
* :func:`encode` / :func:`decode` are the only (de)serializers, so a
  field added to a dataclass is automatically carried, and an unknown
  ``type`` or malformed payload raises :class:`ProtocolError` with a
  hint rather than an ``AttributeError`` three frames later;
* execution knobs ride as a :class:`repro.request.RunRequest` (its
  ``as_dict`` wire form), the same object the runner CLI builds — the
  service cannot grow a divergent knob set.

Bump :data:`PROTOCOL_VERSION` whenever a message's meaning changes
(fields added with defaults are backward-compatible and do not need a
bump; removed/renamed fields and semantic changes do).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Any, ClassVar

from ..experiments.common import Cell
from ..request import RunRequest

__all__ = [
    "PROTOCOL_VERSION", "ProtocolError", "check_version",
    "CellSpec", "Hello", "Welcome", "SubmitExperiments", "SubmitCells",
    "SubmitQuantize", "StatusRequest", "Bye", "Accepted", "CellEvent",
    "JobResult", "StatusReply", "ErrorReply",
    "encode", "decode",
]

#: revision of this message vocabulary; negotiated by Hello/Welcome
PROTOCOL_VERSION = 1


class ProtocolError(Exception):
    """A malformed, unknown, or version-mismatched message.

    Carries an optional *hint* telling the peer how to fix the
    exchange; the server forwards both as an :class:`ErrorReply`.
    """

    def __init__(self, message: str, hint: str | None = None):
        super().__init__(message)
        self.hint = hint


def check_version(version: Any) -> None:
    """Reject a peer whose protocol revision is not ours, with a hint."""
    if version != PROTOCOL_VERSION:
        side = ("upgrade the client"
                if isinstance(version, int) and version < PROTOCOL_VERSION
                else "upgrade the server")
        raise ProtocolError(
            f"protocol version mismatch: peer speaks "
            f"{version!r}, this side speaks {PROTOCOL_VERSION}",
            hint=f"{side}, or pin both ends to the same repro release; "
                 f"see repro.service.protocol.PROTOCOL_VERSION")


# ---------------------------------------------------------------------------
# Payload fragments
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CellSpec:
    """Wire form of one :class:`~repro.experiments.common.Cell`.

    ``options`` is the cell's canonical sorted pair tuple; values are
    restricted to JSON scalars (bool/int/float/str), which is what the
    in-repo cell grids use.
    """

    kind: str
    matrix: str
    fmt: str
    options: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def from_cell(cls, cell: Cell) -> "CellSpec":
        return cls(cell.kind, cell.matrix, cell.fmt, tuple(cell.options))

    def to_cell(self) -> Cell:
        return Cell(self.kind, self.matrix, self.fmt,
                    tuple(sorted((str(k), v) for k, v in self.options)))

    def to_json(self) -> dict[str, Any]:
        return {"kind": self.kind, "matrix": self.matrix,
                "fmt": self.fmt,
                "options": [[k, v] for k, v in self.options]}

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "CellSpec":
        try:
            options = tuple((str(k), v) for k, v in data.get("options", []))
            return cls(str(data["kind"]), str(data["matrix"]),
                       str(data["fmt"]), options)
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed cell spec {data!r}: {exc}",
                                hint="expected {kind, matrix, fmt, "
                                     "options: [[name, value], ...]}"
                                ) from None


def _request_to_json(request: RunRequest) -> dict[str, Any]:
    return request.as_dict()


def _request_from_json(data: Any) -> RunRequest:
    if not isinstance(data, dict):
        raise ProtocolError(f"malformed run request {data!r}",
                            hint="expected RunRequest.as_dict() output")
    try:
        return RunRequest.from_dict(data)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid run request: {exc}",
                            hint="see repro.RunRequest for the knob "
                                 "names, types and bounds") from None


# ---------------------------------------------------------------------------
# Messages — client → server
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Hello:
    """Connection opener; the server replies Welcome or ErrorReply."""

    TYPE: ClassVar[str] = "hello"
    version: int = PROTOCOL_VERSION
    client: str = "?"


@dataclass(frozen=True)
class SubmitExperiments:
    """Run registered experiments end-to-end (cells + CSV assembly)."""

    TYPE: ClassVar[str] = "submit-experiments"
    id: str
    experiments: tuple[str, ...]
    request: RunRequest = field(default_factory=RunRequest)


@dataclass(frozen=True)
class SubmitCells:
    """Run an explicit cell set; results stay in the shared cache."""

    TYPE: ClassVar[str] = "submit-cells"
    id: str
    cells: tuple[CellSpec, ...]
    request: RunRequest = field(default_factory=RunRequest)


@dataclass(frozen=True)
class SubmitQuantize:
    """Round a value batch in one format (cheap, served inline).

    ``values`` is either a flat tuple of floats (one batch) or a tuple
    of float tuples (one group per array — the wire form of
    :meth:`repro.FPContext.quantize_many`); the reply's ``values``
    mirrors the shape.  Both forms predate no wire field, so no
    PROTOCOL_VERSION bump is needed.
    """

    TYPE: ClassVar[str] = "submit-quantize"
    id: str
    fmt: str
    values: tuple[float | tuple[float, ...], ...]


@dataclass(frozen=True)
class StatusRequest:
    """Ask for the server's live counters and queue depths."""

    TYPE: ClassVar[str] = "status"
    id: str


@dataclass(frozen=True)
class Bye:
    """Polite disconnect (closing the socket works too)."""

    TYPE: ClassVar[str] = "bye"


# ---------------------------------------------------------------------------
# Messages — server → client
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Welcome:
    """Successful handshake."""

    TYPE: ClassVar[str] = "welcome"
    version: int = PROTOCOL_VERSION
    server: str = "repro.service"


@dataclass(frozen=True)
class Accepted:
    """A submit was admitted to the queue; *cells* is the grid size."""

    TYPE: ClassVar[str] = "accepted"
    id: str
    cells: int = 0


@dataclass(frozen=True)
class CellEvent:
    """One cell of a job settled (progress stream).

    ``status`` is a manifest v2 cell status (``completed`` / ``cached``
    / ``failed`` / ``timeout`` / ``poisoned``); ``coalesced`` marks a
    cell this job did not compute because another client's identical
    in-flight cell was joined instead.
    """

    TYPE: ClassVar[str] = "event"
    id: str
    seq: int
    cell: str
    status: str
    duration: float = 0.0
    coalesced: bool = False
    error: str | None = None


@dataclass(frozen=True)
class JobResult:
    """Terminal reply for one job.

    ``experiments`` maps experiment id → ``{status, csv_path, error}``
    for experiment jobs; ``cells`` is the outcome tally; ``values``
    carries quantize results (flat, or grouped per input array for a
    batched quantize — mirroring the submit's shape).
    """

    TYPE: ClassVar[str] = "result"
    id: str
    status: str                      # completed | failed
    experiments: dict[str, Any] = field(default_factory=dict)
    cells: dict[str, int] = field(default_factory=dict)
    values: tuple[float | tuple[float, ...], ...] | None = None
    error: str | None = None


@dataclass(frozen=True)
class StatusReply:
    """Live server counters (see ``ServiceStats.as_dict``)."""

    TYPE: ClassVar[str] = "status-reply"
    id: str
    stats: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ErrorReply:
    """A request was rejected; *hint* says how to fix it.

    ``id`` is the offending request's id when known.  ``error`` of
    ``"busy"`` is the backpressure signal: the per-client job bound is
    reached, and the client should retry with backoff (the sync client
    does so automatically, sharing the engine's schedule).
    """

    TYPE: ClassVar[str] = "error"
    id: str | None
    error: str
    hint: str | None = None


# ---------------------------------------------------------------------------
# (De)serialization
# ---------------------------------------------------------------------------

_MESSAGES = {cls.TYPE: cls for cls in (
    Hello, SubmitExperiments, SubmitCells, SubmitQuantize, StatusRequest,
    Bye, Welcome, Accepted, CellEvent, JobResult, StatusReply, ErrorReply)}


def _cells_from_json(value: Any) -> tuple[CellSpec, ...]:
    if not isinstance(value, list):
        raise ProtocolError(f"malformed cells field {value!r}",
                            hint="expected a list of cell specs")
    return tuple(CellSpec.from_json(c) for c in value)


def _values_from_json(value: Any) -> tuple | None:
    """Quantize values: a flat float tuple or a tuple of float tuples.

    The generic list→tuple conversion in :func:`decode` is shallow, so
    grouped batches need this to come back as nested *tuples* (keeping
    the dataclasses hashable and round-trip equal).
    """
    if value is None:
        return None
    if not isinstance(value, list):
        raise ProtocolError(f"malformed values field {value!r}",
                            hint="expected a list of numbers or a list "
                                 "of number lists")
    try:
        return tuple(tuple(float(x) for x in v)
                     if isinstance(v, (list, tuple)) else float(v)
                     for v in value)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed values field: {exc}",
                            hint="values must be numbers (flat batch) "
                                 "or lists of numbers (grouped batch)"
                            ) from None


#: per-message structured decoders — keyed by *class*, not field name
#: (``cells`` is a CellSpec tuple on SubmitCells but an int on
#: Accepted and a tally dict on JobResult)
_STRUCTURED: dict[type, dict[str, Any]] = {
    SubmitExperiments: {"request": _request_from_json},
    SubmitCells: {"request": _request_from_json,
                  "cells": _cells_from_json},
    SubmitQuantize: {"values": _values_from_json},
    JobResult: {"values": _values_from_json},
}


def encode(message: Any) -> str:
    """One JSON line (``\\n``-terminated) for any protocol message."""
    if _MESSAGES.get(getattr(message, "TYPE", None)) is not type(message):
        raise ProtocolError(f"not a protocol message: {message!r}")
    payload: dict[str, Any] = {"type": message.TYPE}
    for f in fields(message):
        value = getattr(message, f.name)
        if isinstance(value, RunRequest):
            value = _request_to_json(value)
        elif isinstance(value, tuple):
            value = [c.to_json() if isinstance(c, CellSpec) else c
                     for c in value]
        payload[f.name] = value
    return json.dumps(payload, sort_keys=True) + "\n"


def decode(line: str | bytes) -> Any:
    """Parse one wire line back into its message dataclass."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"not valid JSON: {exc}",
                            hint="one JSON object per line") from None
    if not isinstance(payload, dict) or "type" not in payload:
        raise ProtocolError(f"not a protocol message: {payload!r}",
                            hint='every message carries a "type" key')
    tag = payload.pop("type")
    cls = _MESSAGES.get(tag)
    if cls is None:
        raise ProtocolError(
            f"unknown message type {tag!r}",
            hint=f"known types: {', '.join(sorted(_MESSAGES))}; a newer "
                 f"peer must bump PROTOCOL_VERSION, not invent types")
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ProtocolError(
            f"unknown field(s) {unknown} on {tag!r}",
            hint="field additions require a PROTOCOL_VERSION bump")
    converters = _STRUCTURED.get(cls, {})
    kwargs: dict[str, Any] = {}
    for f in fields(cls):
        if f.name not in payload:
            continue
        value = payload[f.name]
        convert = converters.get(f.name)
        if convert is not None:
            value = convert(value)
        elif isinstance(value, list):
            # every tuple-typed field rides as a JSON array; no field
            # is typed ``list``, so array → tuple is always right
            value = tuple(value)
        kwargs[f.name] = value
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed {tag!r} message: {exc}") from None
