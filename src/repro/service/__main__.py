"""``python -m repro.service`` — serve, submit, status, quantize.

``serve`` runs the server in the foreground until interrupted::

    python -m repro.service serve --socket /tmp/repro.sock --jobs 4
    python -m repro.service serve --port 7341 --jobs 4 --timeout 120

``submit`` runs experiments through a server and streams progress::

    python -m repro.service submit --address unix:/tmp/repro.sock \\
        --scale smoke fig6 table3

``status`` prints the server's live counters as JSON; ``quantize``
rounds values in a format server-side (a protocol smoke test)::

    python -m repro.service status --address 127.0.0.1:7341
    python -m repro.service quantize --address 127.0.0.1:7341 \\
        --fmt posit16es1 0.1 0.2 0.3
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import os
import sys

from ..request import RunRequest
from .client import Client
from .protocol import PROTOCOL_VERSION, CellEvent
from .server import ExperimentServer


def _add_address(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--address", default=os.environ.get("REPRO_SERVICE_ADDRESS"),
        help="server address: 'unix:/path' or 'host:port' "
             "(default: $REPRO_SERVICE_ADDRESS)")


def _require_address(args: argparse.Namespace,
                     parser: argparse.ArgumentParser) -> str:
    if not args.address:
        parser.error("--address is required "
                     "(or set REPRO_SERVICE_ADDRESS)")
    return args.address


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="the repro experiment service")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the server (foreground)")
    where = serve.add_mutually_exclusive_group()
    where.add_argument("--socket", metavar="PATH",
                       help="listen on a unix domain socket")
    where.add_argument("--port", type=int, default=None,
                       help="listen on 127.0.0.1:PORT (0 = pick free)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="TCP bind host (default: 127.0.0.1)")
    serve.add_argument("--jobs", type=int, default=None,
                       help="worker fleet size (default: $REPRO_JOBS)")
    serve.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS", help="per-cell budget")
    serve.add_argument("--retries", type=int, default=1,
                       help="per-cell retries (default: 1)")
    serve.add_argument("--backoff", type=float, default=1.0,
                       help="base retry backoff seconds (default: 1)")
    serve.add_argument("--grace", type=float, default=5.0,
                       help="watchdog SIGTERM->SIGKILL grace "
                            "(default: 5)")
    serve.add_argument("--max-worker-deaths", type=int, default=3,
                       help="poison-cell quarantine bound (default: 3)")
    serve.add_argument("--max-pending-jobs", type=int, default=8,
                       help="per-client in-flight job bound "
                            "(default: 8)")
    serve.add_argument("--batch-delay", type=float, default=0.05,
                       help="coalescing window seconds (default: 0.05)")

    submit = sub.add_parser("submit",
                            help="run experiments through a server")
    _add_address(submit)
    submit.add_argument("experiments", nargs="+", metavar="EXPERIMENT",
                        help="experiment ids (see `python -m "
                             "repro.experiments list`)")
    submit.add_argument("--scale", default=None,
                        help="run scale (default: $REPRO_SCALE or "
                             "'small')")
    submit.add_argument("--quiet", action="store_true",
                        help="suppress the per-cell progress stream")

    status = sub.add_parser("status",
                            help="print server counters as JSON")
    _add_address(status)

    quantize = sub.add_parser("quantize",
                              help="round values in a format "
                                   "server-side")
    _add_address(quantize)
    quantize.add_argument("--fmt", required=True,
                          help="format name (e.g. posit16es1, fp32)")
    quantize.add_argument("values", nargs="+", type=float,
                          metavar="VALUE")

    return parser


def _cmd_serve(args: argparse.Namespace) -> int:
    request = RunRequest.make(
        jobs=args.jobs, timeout=args.timeout, retries=args.retries,
        backoff=args.backoff, grace=args.grace,
        max_worker_deaths=args.max_worker_deaths)
    server = ExperimentServer(
        socket_path=args.socket, host=args.host,
        port=args.port if args.port is not None else 0,
        request=request, max_pending_jobs=args.max_pending_jobs,
        batch_delay=args.batch_delay)

    async def main() -> None:
        await server.start()
        print(f":: repro.service listening on {server.address} "
              f"(jobs={request.jobs}, protocol v{PROTOCOL_VERSION})",
              flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print(":: repro.service stopped", file=sys.stderr)
    finally:
        if args.socket:
            with contextlib.suppress(OSError):
                os.unlink(args.socket)
    return 0


def _cmd_submit(args: argparse.Namespace,
                parser: argparse.ArgumentParser) -> int:
    address = _require_address(args, parser)

    def on_event(event: CellEvent) -> None:
        if args.quiet:
            return
        mark = "~" if event.coalesced else ("=" if event.status ==
                                            "cached" else ">")
        line = (f"  {mark} [{event.seq}] {event.cell}: {event.status}"
                f" ({event.duration:g}s)")
        if event.error:
            line += f" — {event.error}"
        print(line, flush=True)

    with Client(address, name="submit-cli") as client:
        result = client.submit_experiments(
            list(args.experiments), scale=args.scale,
            on_event=on_event)
    print(json.dumps({
        "status": result.status,
        "cells": result.cells,
        "experiments": result.experiments,
        **({"error": result.error} if result.error else {}),
    }, indent=2, sort_keys=True))
    return 0 if result.status == "completed" else 1


def _cmd_status(args: argparse.Namespace,
                parser: argparse.ArgumentParser) -> int:
    address = _require_address(args, parser)
    with Client(address, name="status-cli") as client:
        stats = client.status()
    print(json.dumps(stats, indent=2, sort_keys=True))
    return 0


def _cmd_quantize(args: argparse.Namespace,
                  parser: argparse.ArgumentParser) -> int:
    address = _require_address(args, parser)
    with Client(address, name="quantize-cli") as client:
        rounded = client.quantize(args.fmt, args.values)
    for original, value in zip(args.values, rounded):
        print(f"{original!r} -> {value!r}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args, parser)
    if args.command == "status":
        return _cmd_status(args, parser)
    if args.command == "quantize":
        return _cmd_quantize(args, parser)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
