"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (TypeError, ValueError from user misuse)
propagate normally.
"""

from __future__ import annotations

__all__ = [
    "ReproError", "PositError", "NaRError", "InvalidPositConfig",
    "FormatError", "UnknownFormatError", "OracleUnsupportedFormat",
    "LinAlgError", "FactorizationError", "ConvergenceError",
    "ScalingError", "FaultInjected", "RecoveryExhausted",
    "ExperimentTimeout", "MatrixGenerationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class PositError(ReproError):
    """Base class for posit arithmetic errors."""


class NaRError(PositError):
    """An operation produced or consumed NaR (Not a Real).

    Posit has a single exception value; when strict mode is enabled the
    library raises this instead of silently propagating NaR.
    """


class InvalidPositConfig(PositError):
    """The (nbits, es) pair does not describe a valid posit format."""


class FormatError(ReproError):
    """Base class for number-format layer errors."""


class UnknownFormatError(FormatError, KeyError):
    """A format name was not found in the registry."""


class OracleUnsupportedFormat(FormatError):
    """The exact-arithmetic oracle has no reference model for a format.

    Raised for formats whose rounding is not round-to-nearest-even
    (directed modes, stochastic rounding) and for format classes the
    oracle does not know how to decode bit-exactly.
    """


class OracleError(ReproError):
    """The exact-arithmetic oracle could not certify a result.

    Raised when an adaptive-precision comparison fails to decide at its
    precision cap — practically unreachable for the supported formats,
    but an explicit failure beats silently returning a wrong reference.
    """


class LinAlgError(ReproError):
    """Base class for solver failures."""


class FactorizationError(LinAlgError):
    """A factorization broke down (non-positive pivot, NaN/inf entry).

    Corresponds to the '-' entries of Table II in the paper: the
    low-precision Cholesky factorization failed outright.
    """

    def __init__(self, message: str, *, stage: str = "factorization",
                 pivot_index: int | None = None):
        super().__init__(message)
        self.stage = stage
        self.pivot_index = pivot_index


class ConvergenceError(LinAlgError):
    """An iterative method exhausted its iteration budget.

    Experiments generally *record* non-convergence rather than raising;
    this error exists for strict callers of the public API.
    """

    def __init__(self, message: str, *, iterations: int | None = None,
                 residual: float | None = None):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class ScalingError(ReproError):
    """A matrix rescaling strategy could not be applied."""


class FaultInjected(ReproError):
    """A fault injector corrupted a value while running in strict mode.

    Raised only when the injector is configured with ``on_fault="raise"``
    — the default mode corrupts silently, which is the point of silent
    data corruption studies.  Carries enough metadata to locate the hit.
    """

    def __init__(self, message: str, *, site: str = "",
                 index: tuple | None = None,
                 before: float | None = None, after: float | None = None):
        super().__init__(message)
        self.site = site
        self.index = index
        self.before = before
        self.after = after


class RecoveryExhausted(LinAlgError):
    """Every rung of a recovery ladder failed.

    Raised by the strict variants of the :mod:`repro.resilience.recovery`
    entry points; the attached ``trace`` records every attempt.
    """

    def __init__(self, message: str, *, trace=None):
        super().__init__(message)
        self.trace = trace


class ExperimentTimeout(ReproError):
    """An experiment exceeded its wall-clock budget.

    Raised from inside :func:`repro.resilience.isolation.time_limit`;
    the crash-safe runner records it in the run manifest and moves on.
    """


class MatrixGenerationError(ReproError):
    """A synthetic matrix could not be generated to specification."""
