"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (TypeError, ValueError from user misuse)
propagate normally.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class PositError(ReproError):
    """Base class for posit arithmetic errors."""


class NaRError(PositError):
    """An operation produced or consumed NaR (Not a Real).

    Posit has a single exception value; when strict mode is enabled the
    library raises this instead of silently propagating NaR.
    """


class InvalidPositConfig(PositError):
    """The (nbits, es) pair does not describe a valid posit format."""


class FormatError(ReproError):
    """Base class for number-format layer errors."""


class UnknownFormatError(FormatError, KeyError):
    """A format name was not found in the registry."""


class LinAlgError(ReproError):
    """Base class for solver failures."""


class FactorizationError(LinAlgError):
    """A factorization broke down (non-positive pivot, NaN/inf entry).

    Corresponds to the '-' entries of Table II in the paper: the
    low-precision Cholesky factorization failed outright.
    """

    def __init__(self, message: str, *, stage: str = "factorization",
                 pivot_index: int | None = None):
        super().__init__(message)
        self.stage = stage
        self.pivot_index = pivot_index


class ConvergenceError(LinAlgError):
    """An iterative method exhausted its iteration budget.

    Experiments generally *record* non-convergence rather than raising;
    this error exists for strict callers of the public API.
    """

    def __init__(self, message: str, *, iterations: int | None = None,
                 residual: float | None = None):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class ScalingError(ReproError):
    """A matrix rescaling strategy could not be applied."""


class MatrixGenerationError(ReproError):
    """A synthetic matrix could not be generated to specification."""
