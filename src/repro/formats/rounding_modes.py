"""Alternative rounding modes: directed IEEE rounding and stochastic
rounding.

The paper's experiments use round-to-nearest-even exclusively (posit
has no other mode), but the mixed-precision iterative-refinement
literature it builds on (Higham et al.) actively studies **stochastic
rounding** as a cure for the stagnation of low-precision accumulation.
This module adds those modes so the ``ext-stochastic`` ablation can ask
"would a different Float16 rounding mode have changed Table II?":

* :class:`DirectedIEEEFormat` — an :class:`IEEEFormat` with
  ``toward_zero`` / ``down`` / ``up`` rounding (saturating at ±max,
  since directed overflow-to-inf is never what a solver wants);
* :class:`StochasticRounding` — wraps *any* deterministic format and
  rounds to one of the two bracketing representable values with
  probability proportional to proximity; unbiased
  (``E[round(x)] = x``) and reproducible via an explicit seed.
"""

from __future__ import annotations

import numpy as np

from .base import NumberFormat
from .ieee import IEEEFormat

__all__ = ["DirectedIEEEFormat", "StochasticRounding"]

_DIRECTED = ("toward_zero", "down", "up")


class DirectedIEEEFormat(IEEEFormat):
    """IEEE emulation with a directed rounding mode.

    Mode semantics follow IEEE 754 §4.3 in value space; magnitudes
    beyond the largest finite value saturate to ±max (documented
    deviation: no overflow to infinity, keeping solver breakdown
    semantics identical across modes).
    """

    def __init__(self, precision: int, exp_bits: int, mode: str,
                 name: str | None = None):
        if mode not in _DIRECTED:
            raise ValueError(f"mode must be one of {_DIRECTED}, "
                             f"got {mode!r}")
        self.mode = mode
        super().__init__(precision, exp_bits,
                         name=name or
                         f"ieee{1 + exp_bits + precision - 1}"
                         f"p{precision}e{exp_bits}_{mode}",
                         display_name=f"IEEE(p={precision}, "
                                      f"w={exp_bits}, {mode})")
        # two-level affine step: directed modes step with the matching
        # ufunc (all are sign-aware, so the signed-value path is exact)
        self._affine_step = {"toward_zero": np.trunc, "down": np.floor,
                             "up": np.ceil}[mode]

    def _key(self):
        return super()._key() + (self.mode,)

    def _affine_post(self, r: np.ndarray) -> np.ndarray:
        """Saturation rule of :meth:`_round_impl`, verbatim."""
        return np.clip(r, -self._max, self._max)

    def _round_impl(self, arr: np.ndarray) -> np.ndarray:
        out = arr.copy()
        finite = np.isfinite(arr) & (arr != 0)
        if not np.any(finite):
            return out
        v = arr[finite]
        with np.errstate(invalid="ignore"):
            _, e = np.frexp(np.abs(v))
        s_eff = np.maximum(e.astype(np.int64) - 1, np.int64(self.emin))
        g = np.ldexp(1.0, (s_eff - np.int64(self.precision - 1))
                     .astype(np.int32))
        scaled = v / g
        if self.mode == "toward_zero":
            r = np.trunc(scaled) * g
        elif self.mode == "down":
            r = np.floor(scaled) * g
        else:  # up
            r = np.ceil(scaled) * g
        r = np.clip(r, -self._max, self._max)
        out[finite] = r
        return out


class StochasticRounding(NumberFormat):
    """Stochastic rounding on top of any deterministic format.

    ``round(x)`` returns the representable value just below x with
    probability ``(hi - x)/(hi - lo)`` and the one just above otherwise,
    so ``E[round(x)] = x`` exactly.  Exactly-representable inputs are
    returned unchanged.  The generator state advances on every call;
    reseed (or construct a fresh instance) for reproducible runs.
    """

    def __init__(self, base: NumberFormat, seed: int = 0):
        self.base = base
        self.name = f"{base.name}_sr"
        self.display_name = f"{base.display_name}+SR"
        self.nbits = base.nbits
        self._rng = np.random.default_rng(seed)

    def reseed(self, seed: int) -> None:
        """Reset the RNG (for reproducible experiment repetitions)."""
        self._rng = np.random.default_rng(seed)

    def _key(self):
        return ("StochasticRounding", self.base._key())

    def round(self, x):
        arr = np.asarray(x, dtype=np.float64)
        scalar = np.isscalar(x) or arr.ndim == 0
        arr = np.atleast_1d(arr).astype(np.float64)
        out = self._round_impl(arr)
        return float(out[0]) if scalar else out

    def _round_impl(self, arr: np.ndarray) -> np.ndarray:
        nearest = np.asarray(self.base.round(arr), dtype=np.float64)
        out = nearest.copy()
        # candidates: nearest and its neighbour on the other side of x
        inexact = np.isfinite(nearest) & (nearest != arr) \
            & np.isfinite(arr)
        if not np.any(inexact):
            return out
        x = arr[inexact]
        a = nearest[inexact]
        # Find the bracketing value b on x's side of a by doubling the
        # offset until rounding escapes a.  While round(a + d) == a we
        # know d <= gap/2, so 2d <= gap and the first escape lands
        # exactly on the adjacent representable value — never beyond.
        d = x - a  # nonzero by construction
        b = np.asarray(self.base.round(a + d), dtype=np.float64)
        for _ in range(80):
            stuck = (b == a) & np.isfinite(b)
            if not np.any(stuck):
                break
            d = np.where(stuck, 2.0 * d, d)
            b = np.where(stuck,
                         np.asarray(self.base.round(a + d),
                                    dtype=np.float64), b)
        # saturation / non-finite fallbacks keep the deterministic value
        b = np.where(np.isfinite(b), b, a)
        gap = b - a
        with np.errstate(invalid="ignore", divide="ignore"):
            p_b = np.where(gap != 0.0, (x - a) / gap, 0.0)
        p_b = np.clip(p_b, 0.0, 1.0)
        u = self._rng.random(x.shape)
        out[inexact] = np.where(u < p_b, b, a)
        return out

    @property
    def max_value(self) -> float:
        return self.base.max_value

    @property
    def min_positive(self) -> float:
        return self.base.min_positive

    @property
    def eps_at_one(self) -> float:
        return self.base.eps_at_one

    @property
    def saturates(self) -> bool:
        return self.base.saturates
