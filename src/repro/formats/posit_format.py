"""Posit formats as :class:`NumberFormat` instances."""

from __future__ import annotations

import math

import numpy as np

from ..kernels import lut
from ..posit.codec import PositConfig, decode_float, encode, posit_config
from ..posit.rounding import (_posit_round_impl, posit_decode_array,
                              posit_two_level_spec)
from .base import NumberFormat

__all__ = ["PositFormat", "POSIT8_0", "POSIT16_1", "POSIT16_2",
           "POSIT32_2", "POSIT32_3"]


class PositFormat(NumberFormat):
    """A posit(nbits, es) arithmetic format.

    Quantization delegates to the vectorized kernel in
    :mod:`repro.posit.rounding`, or — for narrow formats on small
    arrays — to the bit-identical searchsorted tables of
    :mod:`repro.kernels.lut`.  Note the two posit-specific behaviours
    that matter in the experiments: saturation at ±maxpos instead of
    overflow to infinity, and clamping to ±minpos instead of underflow
    to zero — both are what give Posit16 its "superior reach" in the
    paper's Table II.
    """

    def __init__(self, nbits: int, es: int):
        self._cfg: PositConfig = posit_config(nbits, es)
        self.nbits = nbits
        self.es = es
        self.name = f"posit{nbits}es{es}"
        self.display_name = f"Posit({nbits}, {es})"
        self._lut_max_n = (lut.max_eligible_n(nbits)
                           if nbits <= lut.MAX_TABLE_BITS else -1)
        self._table = None
        self._table2 = None

    @property
    def config(self) -> PositConfig:
        """The underlying codec configuration."""
        return self._cfg

    def _bitwise_round(self, arr: np.ndarray) -> np.ndarray:
        return _posit_round_impl(np.asarray(arr, dtype=np.float64),
                                 self._cfg)

    def _lut_table(self) -> "lut.RoundingTable":
        if self._table is None:
            cfg = self._cfg
            self._table = lut.rounding_table(
                self._key(),
                lambda: posit_decode_array(
                    np.arange(cfg.npat, dtype=np.int64), cfg),
                self._bitwise_round, fmt_name=self.name)
        return self._table

    def _two_level_table(self) -> "lut.TwoLevelTable":
        if self._table2 is None:
            cfg = self._cfg
            self._table2 = lut.two_level_table(
                self._key(),
                lambda: posit_two_level_spec(cfg),
                self._bitwise_round, fmt_name=self.name)
        return self._table2

    def round(self, x):
        arr = np.asarray(x, dtype=np.float64)
        scalar = arr.ndim == 0
        if scalar:
            arr = arr.reshape(1)
        if lut._ENABLED:
            # narrow format + small array: one dense searchsorted;
            # everything else: exponent-bucketed two-level table (the
            # only table route for posit32-class formats)
            if arr.size <= self._lut_max_n:
                out = self._lut_table().round_array(arr)
            else:
                out = self._two_level_table().round_array(arr)
        else:
            out = _posit_round_impl(arr, self._cfg)
        return float(out[0]) if scalar else out

    @property
    def max_value(self) -> float:
        return float(self._cfg.maxpos)

    @property
    def min_positive(self) -> float:
        return float(self._cfg.minpos)

    @property
    def eps_at_one(self) -> float:
        return float(self._cfg.eps_at_one)

    # -- bit-level codec (delegates to the exact reference codec) ----------
    def to_bits(self, value: float) -> int:
        v = float(value)
        if math.isnan(v) or math.isinf(v):
            return self._cfg.nar_pattern
        return encode(v, self._cfg)

    def from_bits(self, pattern: int) -> float:
        return decode_float(pattern, self._cfg)

    @property
    def useed(self) -> int:
        """``2**(2**es)`` — the Higham-rescaling μ for posit (paper §V-D)."""
        return self._cfg.useed

    @property
    def saturates(self) -> bool:
        return True


POSIT8_0 = PositFormat(8, 0)
POSIT16_1 = PositFormat(16, 1)
POSIT16_2 = PositFormat(16, 2)
POSIT32_2 = PositFormat(32, 2)
POSIT32_3 = PositFormat(32, 3)
