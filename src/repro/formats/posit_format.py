"""Posit formats as :class:`NumberFormat` instances."""

from __future__ import annotations

import math

import numpy as np

from ..posit.codec import PositConfig, decode_float, encode, posit_config
from ..posit.rounding import posit_round
from .base import NumberFormat

__all__ = ["PositFormat", "POSIT8_0", "POSIT16_1", "POSIT16_2",
           "POSIT32_2", "POSIT32_3"]


class PositFormat(NumberFormat):
    """A posit(nbits, es) arithmetic format.

    Quantization delegates to the vectorized kernel in
    :mod:`repro.posit.rounding`.  Note the two posit-specific behaviours
    that matter in the experiments: saturation at ±maxpos instead of
    overflow to infinity, and clamping to ±minpos instead of underflow
    to zero — both are what give Posit16 its "superior reach" in the
    paper's Table II.
    """

    def __init__(self, nbits: int, es: int):
        self._cfg: PositConfig = posit_config(nbits, es)
        self.nbits = nbits
        self.es = es
        self.name = f"posit{nbits}es{es}"
        self.display_name = f"Posit({nbits}, {es})"

    @property
    def config(self) -> PositConfig:
        """The underlying codec configuration."""
        return self._cfg

    def round(self, x):
        out = posit_round(x, self._cfg.nbits, self._cfg.es)
        return float(out) if np.isscalar(x) or np.ndim(x) == 0 else out

    @property
    def max_value(self) -> float:
        return float(self._cfg.maxpos)

    @property
    def min_positive(self) -> float:
        return float(self._cfg.minpos)

    @property
    def eps_at_one(self) -> float:
        return float(self._cfg.eps_at_one)

    # -- bit-level codec (delegates to the exact reference codec) ----------
    def to_bits(self, value: float) -> int:
        v = float(value)
        if math.isnan(v) or math.isinf(v):
            return self._cfg.nar_pattern
        return encode(v, self._cfg)

    def from_bits(self, pattern: int) -> float:
        return decode_float(pattern, self._cfg)

    @property
    def useed(self) -> int:
        """``2**(2**es)`` — the Higham-rescaling μ for posit (paper §V-D)."""
        return self._cfg.useed

    @property
    def saturates(self) -> bool:
        return True


POSIT8_0 = PositFormat(8, 0)
POSIT16_1 = PositFormat(16, 1)
POSIT16_2 = PositFormat(16, 2)
POSIT32_2 = PositFormat(32, 2)
POSIT32_3 = PositFormat(32, 3)
