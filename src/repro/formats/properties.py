"""Format precision analytics — the data behind the paper's Fig. 3.

Fig. 3(a) plots the *absolute* precision (spacing between consecutive
representable values) of each format across ``[1e-12, 1e12]``; Fig. 3(b)
plots *relative* precision as "digits of precision".  These functions
compute both for any :class:`NumberFormat` by direct probing: round a
value, step to the next representable value via the format's own
``round``, and measure the gap.  Probing (rather than closed forms)
keeps the figure honest — it exercises the same quantizers the solvers
use.
"""

from __future__ import annotations

import numpy as np

from .base import NumberFormat
from .registry import get_format

__all__ = [
    "spacing_at",
    "digits_of_precision_at",
    "precision_curve",
    "golden_zone",
    "format_summary",
]


def spacing_at(fmt: NumberFormat | str, x: np.ndarray) -> np.ndarray:
    """Gap between the representable value at/below |x| and the next one up.

    Returns NaN where *x* is outside the format's finite positive range.
    """
    fmt = get_format(fmt)
    x = np.abs(np.asarray(x, dtype=np.float64))
    base = np.asarray(fmt.round(x), dtype=np.float64)
    out = np.full(x.shape, np.nan)
    ok = (base > 0) & np.isfinite(base) & (base < fmt.max_value)
    if not np.any(ok):
        return out
    b = base[ok]
    # binary-search the next representable value above b: start one ulp64
    # up and double the probe until rounding moves off b.
    probe = np.nextafter(b, np.inf)
    nxt = np.asarray(fmt.round(probe), dtype=np.float64)
    step = np.spacing(b)
    # The loop terminates because once the probe passes the midpoint of
    # the gap, rounding lands on the next value; gaps are finite here.
    for _ in range(200):
        stuck = nxt <= b
        if not np.any(stuck):
            break
        step = np.where(stuck, step * 2.0, step)
        probe = np.where(stuck, b + step, probe)
        nxt = np.asarray(fmt.round(probe), dtype=np.float64)
    # probe overshoot can skip a value; re-round the midpoint down.
    mid = np.asarray(fmt.round((b + nxt) / 2.0), dtype=np.float64)
    nxt = np.where(mid > b, mid, nxt)
    out[ok] = nxt - b
    return out


def digits_of_precision_at(fmt: NumberFormat | str,
                           x: np.ndarray) -> np.ndarray:
    """Decimal digits of relative precision at |x| (Fig. 3b's y-axis).

    ``-log10(spacing / value)`` evaluated at the representable value
    bracketing x from below.  NaN outside the finite range.
    """
    fmt = get_format(fmt)
    x = np.abs(np.asarray(x, dtype=np.float64))
    gap = spacing_at(fmt, x)
    base = np.asarray(fmt.round(x), dtype=np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        return -np.log10(gap / base)


def precision_curve(fmt: NumberFormat | str, lo: float = 1e-12,
                    hi: float = 1e12, points: int = 241) -> dict:
    """Sampled precision curves over a log grid (the Fig. 3 series).

    Returns ``{"x", "absolute", "digits"}`` arrays of length *points*.
    """
    fmt = get_format(fmt)
    x = np.logspace(np.log10(lo), np.log10(hi), points)
    gap = spacing_at(fmt, x)
    digits = digits_of_precision_at(fmt, x)
    return {"x": x, "absolute": gap, "digits": digits, "format": fmt.name}


def golden_zone(posit_fmt: NumberFormat | str,
                reference: NumberFormat | str = "fp32") -> tuple[float, float]:
    """The |x| interval where the posit format beats *reference* precision.

    de Dinechin's "golden zone" (paper §II-B): where posit's relative
    spacing is strictly smaller than the IEEE reference's.  Computed
    analytically from the regime geometry: the posit has
    ``nbits - 3 - es + r`` extra fraction bits at scale regions
    ``|k| <= r``; it beats an IEEE format with p significand bits while
    its own fraction width exceeds p-1 bits.
    """
    from ..posit.codec import fraction_bits_at_scale
    pf = get_format(posit_fmt)
    rf = get_format(reference)
    if not hasattr(pf, "config"):
        raise TypeError(f"{pf} is not a posit format")
    ref_frac_bits = -int(np.round(np.log2(rf.eps_at_one)))  # p - 1
    cfg = pf.config
    scales = range(cfg.min_scale, cfg.max_scale + 1)
    good = [s for s in scales
            if fraction_bits_at_scale(s, cfg) >= ref_frac_bits]
    if not good:
        return (np.nan, np.nan)
    lo = float(np.ldexp(1.0, min(good)))
    hi = float(np.ldexp(1.0, max(good) + 1))
    return (lo, hi)


def format_summary(fmt: NumberFormat | str) -> dict:
    """One row of the format-properties table printed by the Fig. 3 bench."""
    fmt = get_format(fmt)
    return {
        "name": fmt.name,
        "display": fmt.display_name,
        "bits": fmt.nbits,
        "eps_at_one": fmt.eps_at_one,
        "digits_at_one": fmt.decimal_digits_at_one,
        "max": fmt.max_value,
        "min_positive": fmt.min_positive,
        "dynamic_range_decades": fmt.dynamic_range_decades,
        "saturates": fmt.saturates,
    }
