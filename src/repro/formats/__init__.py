"""Unified number-format layer: IEEE (native + emulated) and posit formats
behind one quantization interface.

>>> from repro.formats import get_format
>>> get_format("posit32es2").round(3.14159265358979)
3.1415926516056061
"""

from .base import NumberFormat
from .ieee import BFLOAT16, FP8_E4M3, FP8_E5M2, IEEEFormat
from .native import FLOAT16, FLOAT32, FLOAT64, NativeIEEEFormat
from .posit_format import (POSIT8_0, POSIT16_1, POSIT16_2, POSIT32_2,
                           POSIT32_3, PositFormat)
from .properties import (digits_of_precision_at, format_summary, golden_zone,
                         precision_curve, spacing_at)
from .registry import (FormatInfo, available_formats, get_format,
                       register_format)
from .rounding_modes import DirectedIEEEFormat, StochasticRounding
from .takum import (TAKUM8, TAKUM16, TAKUM32, TAKUM_LOG8, TAKUM_LOG16,
                    TAKUM_LOG32, TakumFormat)

__all__ = [
    "NumberFormat", "NativeIEEEFormat", "IEEEFormat", "PositFormat",
    "TakumFormat",
    "FLOAT16", "FLOAT32", "FLOAT64", "BFLOAT16", "FP8_E4M3", "FP8_E5M2",
    "POSIT8_0", "POSIT16_1", "POSIT16_2", "POSIT32_2", "POSIT32_3",
    "TAKUM8", "TAKUM16", "TAKUM32",
    "TAKUM_LOG8", "TAKUM_LOG16", "TAKUM_LOG32",
    "get_format", "register_format", "available_formats", "FormatInfo",
    "spacing_at", "digits_of_precision_at", "precision_curve",
    "golden_zone", "format_summary",
    "DirectedIEEEFormat", "StochasticRounding",
]
