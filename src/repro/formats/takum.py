"""Takum arithmetic formats (linear and logarithmic) as NumberFormats.

Takum ("tapered-precision machine number") is the 2024 posit successor
with a *bounded* tapered exponent: every width shares one 255-binade
dynamic range instead of posit's width-dependent runaway regimes.  An
``n``-bit takum reads, MSB first,

    S | D | R(3) | C(r) | M(p)        p = n - 5 - r

with regime ``r = R`` when the direction bit ``D`` is set and
``r = 7 - R`` otherwise, characteristic ``c = 2**r - 1 + C`` (D=1) or
``c = 1 - 2**(r+1) + C`` (D=0), so ``c`` spans exactly [-255, 254], and
mantissa ``m = M / 2**p`` in [0, 1).  The logarithmic value is
``l = (1 - 2S) * (c + m)``:

* **takum-log** (the original proposal): value ``(-1)**S * sqrt(e)**l``
  — a logarithmic number system, so powers of two are *not* exact;
* **takum** (linear): value ``(1 + m) * 2**c`` for S=0 and the exact
  two's-complement mirror ``(m - 2) * 2**(-c - 1)`` for S=1.

Both share posit's algebra: one all-zeros zero, one NaR pattern
(sign bit only), two's-complement negation, total order by signed
pattern, and saturation to ±maxpos / ±minpos instead of overflow or
underflow.  Rounding is round-to-nearest in *extended pattern space*
with ties to the even pattern, never rounding a nonzero value to zero
and never into NaR — the same contract the oracle codecs check for
posit.

The key implementation device is zero extension: an ``n``-bit takum is
exactly the 64-bit takum obtained by appending zero bits, because the
field split only ever moves the C/M cut.  Decode therefore shifts the
magnitude up to 64 bits and splits once; the decision boundary between
adjacent ``n``-bit patterns is the exact decode of the (n+1)-bit
half-point pattern.  For linear takum those boundaries are dyadic
rationals that fit a float64 exactly; for takum-log they are
transcendental (``exp`` of a nonzero dyadic), so the table builder
computes them with :mod:`decimal` at escalating precision until the
enclosing interval certifies the correctly rounded double — by the
Lindemann–Weierstrass theorem the true value is never representable,
so the escalation terminates and no tie handling is needed.

Rounding routes, mirroring :class:`~repro.formats.posit_format.PositFormat`:

* linear, nbits >= 13: vectorized per-binade granule kernel (every
  in-range binade stores >= 1 mantissa bit, so rint's half-even on the
  scaled mantissa equals pattern-space ties-to-even), with the
  searchsorted tables of :mod:`repro.kernels.lut` layered on top —
  dense for <= 16 bits on small arrays, exponent-bucketed two-level
  otherwise;
* linear, nbits <= 12: exact dense table (the truncated-C regimes make
  the binade granule trick unsound there);
* takum-log, nbits <= 16: exact dense table of correctly rounded
  images and certified boundaries;
* takum-log, nbits > 16: scalar path — float64 ``log`` picks the
  pattern cell, and inputs within a guard band of an l-space midpoint
  are resolved exactly via the decimal comparator.
"""

from __future__ import annotations

import decimal
import math
from decimal import Decimal

import numpy as np

from ..errors import FormatError
from ..kernels import lut
from .base import NumberFormat

__all__ = ["TakumFormat", "TAKUM8", "TAKUM16", "TAKUM32",
           "TAKUM_LOG8", "TAKUM_LOG16", "TAKUM_LOG32"]

#: characteristic range shared by every takum width
C_MIN, C_MAX = -255, 254


def _regime_len(c: int) -> int:
    """Regime length r of characteristic *c* (0..7)."""
    return (c + 1).bit_length() - 1 if c >= 0 else (-c).bit_length() - 1


def _base64(c: int) -> int:
    """The 64-bit magnitude pattern with characteristic *c* and M = 0."""
    if c >= 0:
        r = (c + 1).bit_length() - 1
        return (1 << 62) | (r << 59) | ((c - ((1 << r) - 1)) << (59 - r))
    r = (-c).bit_length() - 1
    return ((7 - r) << 59) | ((c - 1 + (1 << (r + 1))) << (59 - r))


def _split64(mag64: int) -> tuple[int, int, int]:
    """Split a 64-bit magnitude into ``(c, M, p)`` with ``m = M / 2**p``."""
    d = (mag64 >> 62) & 1
    rfield = (mag64 >> 59) & 7
    r = rfield if d else 7 - rfield
    p = 59 - r
    cval = (mag64 >> p) & ((1 << r) - 1)
    c = ((1 << r) - 1 + cval) if d else (1 - (1 << (r + 1)) + cval)
    return c, mag64 & ((1 << p) - 1), p


def _decode64_linear(mag64: int) -> float:
    """Exact float64 of a linear-takum magnitude (<= 53 significant bits
    for every zero-extended n<=32 pattern and every half-point)."""
    c, m, p = _split64(mag64)
    return math.ldexp(1.0 + m / (1 << p), c)


def _half_ell(mag64: int) -> tuple[int, int]:
    """``l/2`` of a magnitude as the exact dyadic ``num / 2**log2_den``."""
    c, m, p = _split64(mag64)
    return c * (1 << p) + m, p + 1


def _ell_float(mag64: int) -> float:
    """``l`` of a magnitude as an exact float64 (<= 36 significant bits)."""
    c, m, p = _split64(mag64)
    return c + m / (1 << p)


def _cr_exp_dyadic(num: int, log2_den: int) -> float:
    """Correctly rounded float64 of ``exp(num / 2**log2_den)``.

    Decimal arithmetic is correctly rounded per operation, so the
    result ``y`` at precision ``prec`` has relative error well under
    ``10**(4 - prec)``; when both ends of that interval convert to the
    same double, that double is certified.
    """
    if num == 0:
        return 1.0
    prec = 40
    while prec <= 2560:
        with decimal.localcontext() as ctx:
            ctx.prec = prec
            y = (Decimal(num) / Decimal(1 << log2_den)).exp()
            margin = y.copy_abs() * Decimal(10) ** (4 - prec)
            lo, hi = float(y - margin), float(y + margin)
        if lo == hi:
            return lo
        prec *= 2
    raise ArithmeticError("takum-log exp certification did not converge")


def _exp_boundary_above(num: int, log2_den: int) -> float:
    """Smallest float64 strictly above ``exp(num / 2**log2_den)``, num != 0.

    The true value is transcendental (Lindemann–Weierstrass), hence
    never a double and never midway between doubles: escalation always
    settles which side the certified double lies on.
    """
    prec = 40
    while prec <= 2560:
        with decimal.localcontext() as ctx:
            ctx.prec = prec
            y = (Decimal(num) / Decimal(1 << log2_den)).exp()
            margin = y.copy_abs() * Decimal(10) ** (4 - prec)
            lo, hi = float(y - margin), float(y + margin)
            if lo == hi:
                d = Decimal(lo)
                if d > y + margin:
                    return lo
                if d < y - margin:
                    return math.nextafter(lo, math.inf)
        prec *= 2
    raise ArithmeticError("takum-log boundary certification did not converge")


#: per-nbits (affine-bucket mask, granule) level-1 tables for the
#: vectorized linear kernel, indexed by shifted frexp exponent
_LIN_GRANULES: dict[int, tuple[np.ndarray, np.ndarray]] = {}


class TakumFormat(NumberFormat):
    """A takum(nbits) format; ``log=True`` selects the logarithmic variant."""

    def __init__(self, nbits: int, log: bool = False):
        if not (6 <= nbits <= 32):
            raise FormatError(f"takum width must be in [6, 32], got {nbits}")
        self.nbits = nbits
        self.log = bool(log)
        self.name = f"takum_log{nbits}" if log else f"takum{nbits}"
        self.display_name = (f"Takum-log({nbits})" if log
                             else f"Takum({nbits})")
        self._npat = 1 << nbits
        self._nar = 1 << (nbits - 1)
        self._max_mag = self._nar - 1
        self._one_mag = 1 << (nbits - 2)  # c = 0, m = 0
        self._shift = 64 - nbits
        # exact-dense-table formats: every takum-log that fits a table,
        # and narrow linear takums whose truncated-C regimes break the
        # per-binade granule kernel
        self._table_based = (nbits <= lut.MAX_TABLE_BITS if log
                             else nbits <= 12)
        self._exact: tuple | None = None
        self._images: dict[int, float] = {}
        self._lut_max_n = (lut.max_eligible_n(nbits)
                           if not log and 13 <= nbits <= lut.MAX_TABLE_BITS
                           else -1)
        self._table = None
        self._table2 = None
        self._maxpos = self._decode_mag(self._max_mag)
        self._minpos = self._decode_mag(1)
        self._eps = self._decode_mag(self._one_mag + 1) - 1.0

    # -- exact magnitude decode -------------------------------------------
    def _decode_mag(self, mag: int) -> float:
        """Exact value (linear) / correctly rounded image (log) of a
        positive magnitude pattern."""
        mag64 = mag << self._shift
        if not self.log:
            return _decode64_linear(mag64)
        v = self._images.get(mag)
        if v is None:
            v = _cr_exp_dyadic(*_half_ell(mag64))
            self._images[mag] = v
        return v

    # -- exact dense table (narrow linear, table-width log) ----------------
    def _boundary(self, mag: int, negative: bool) -> float:
        """Smallest float64 the round maps to the *upper* value of the
        adjacent pair at magnitude ``mag``/``mag+1`` (mirrored when
        *negative*): the (n+1)-bit half-point decode, adjusted for the
        ties-to-even-pattern rule (linear) or certified side (log)."""
        hp64 = (mag << self._shift) | (1 << (self._shift - 1))
        if self.log:
            above = _exp_boundary_above(*_half_ell(hp64))
            return above if not negative else -math.nextafter(
                above, -math.inf)
        b = _decode64_linear(hp64)
        if not negative:
            # upper pattern is mag+1; a tie rounds up iff it is even
            return b if (mag + 1) % 2 == 0 else math.nextafter(b, math.inf)
        # upper pattern is npat - mag, whose parity equals mag's
        return -b if mag % 2 == 0 else math.nextafter(-b, math.inf)

    def _exact_table(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._exact is None:
            mm, npat = self._max_mag, self._npat
            pos = [self._decode_mag(m) for m in range(1, mm + 1)]
            values = [-v for v in reversed(pos)] + [0.0] + pos
            patterns = ([npat - m for m in range(mm, 0, -1)] + [0]
                        + list(range(1, mm + 1)))
            bounds = [self._boundary(m, True) for m in range(mm - 1, 0, -1)]
            # only exact ±0 rounds to zero; anything else clamps to ±minpos
            bounds.append(0.0)
            bounds.append(math.nextafter(0.0, 1.0))
            bounds.extend(self._boundary(m, False) for m in range(1, mm))
            v = np.asarray(values, dtype=np.float64)
            b = np.asarray(bounds, dtype=np.float64)
            if not (np.all(np.diff(v) > 0) and np.all(np.diff(b) > 0)):
                raise AssertionError(
                    f"{self.name}: table values/boundaries not monotone")
            self._exact = (v, b, np.asarray(patterns, dtype=np.int64))
        return self._exact

    def _table_round(self, arr: np.ndarray) -> np.ndarray:
        values, bounds, _ = self._exact_table()
        out = values.take(np.searchsorted(bounds, arr, side="right"))
        zero = out == 0.0
        if zero.any():
            out[zero] = arr[zero] * 0.0  # restore the input's zero sign
        bad = ~np.isfinite(arr)
        if bad.any():
            out[bad] = np.nan  # NaR
        return out

    # -- vectorized linear kernel (nbits >= 13) ----------------------------
    def _granule_tables(self) -> tuple[np.ndarray, np.ndarray]:
        tabs = _LIN_GRANULES.get(self.nbits)
        if tabs is None:
            fast = np.zeros(lut.FREXP_E_TABLE, dtype=np.bool_)
            g = np.ones(lut.FREXP_E_TABLE, dtype=np.float64)
            for i in range(lut.FREXP_E_TABLE):
                c = lut.FREXP_E_LO + i - 1  # |x| in [2**c, 2**(c+1))
                if C_MIN <= c <= C_MAX:
                    p = self.nbits - 5 - _regime_len(c)
                    g[i] = math.ldexp(1.0, c - p)
                    fast[i] = True
            tabs = (fast, g)
            _LIN_GRANULES[self.nbits] = tabs
        return tabs

    def _round_impl(self, arr: np.ndarray) -> np.ndarray:
        """Bitwise-exact linear rounding: per-binade granule rint with
        saturation clamps.  ``x/g`` and ``rint(x/g)*g`` are exact (power
        of two granule, <= p+1 result bits), and rint's half-to-even on
        the scaled mantissa is the pattern-space ties-to-even because
        the binade base pattern has its low p >= 1 bits clear."""
        fast_tbl, g_tbl = self._granule_tables()
        ax = np.abs(arr)
        with np.errstate(invalid="ignore"):
            _, e = np.frexp(ax)
        idx = e.astype(np.int64) - lut.FREXP_E_LO
        g = g_tbl.take(idx)
        fast = fast_tbl.take(idx)
        # in-range, finite, nonzero lanes only: zeros must stay ±0 and
        # the inf/NaN frexp garbage must not reach the clamps
        fast &= (ax < np.inf) & (arr != 0.0)
        with np.errstate(over="ignore", invalid="ignore"):
            q = np.rint(ax / g) * g
            np.minimum(q, self._maxpos, out=q)
            np.maximum(q, self._minpos, out=q)
            out = np.where(fast, np.copysign(q, arr), arr)
        rest = ~fast & np.isfinite(arr) & (arr != 0.0)
        if rest.any():
            # below 2**-255 or at/above 2**255: pure saturation
            out[rest] = np.copysign(
                np.where(ax[rest] < 1.0, self._minpos, self._maxpos),
                arr[rest])
        bad = ~np.isfinite(arr)
        if bad.any():
            out[bad] = np.nan  # NaR
        return out

    def _lut_table(self) -> "lut.RoundingTable":
        if self._table is None:
            self._table = lut.rounding_table(
                self._key(),
                lambda: np.array([self.from_bits(p)
                                  for p in range(self._npat)],
                                 dtype=np.float64),
                self._round_impl, fmt_name=self.name)
        return self._table

    def _two_level_spec(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Every in-range binade is affine (p >= 1 mantissa bits for
        nbits >= 13); the sub-minpos / above-maxpos buckets saturate, so
        the dense lane only needs the clamp targets plus bracketing
        neighbours."""
        fast, g = self._granule_tables()
        v2 = self._decode_mag(2)
        vpen = self._decode_mag(self._max_mag - 1)
        candidates = np.array([0.0, self._minpos, v2, vpen, self._maxpos])
        candidates = np.concatenate([candidates, -candidates])
        return g.copy(), fast.copy(), candidates

    def _affine_post(self, r: np.ndarray) -> np.ndarray:
        """Saturation rule of :meth:`_round_impl`, verbatim: binade
        rollover past maxpos clamps, and the bottom binade's rint down
        to the (unrepresentable) 2**-255 clamps up to minpos."""
        with np.errstate(invalid="ignore"):
            r = np.where(np.abs(r) > self._maxpos,
                         np.copysign(self._maxpos, r), r)
            r = np.where((np.abs(r) < self._minpos) & (r != 0.0),
                         np.copysign(self._minpos, r), r)
        return r

    def _two_level_table(self) -> "lut.TwoLevelTable":
        if self._table2 is None:
            self._table2 = lut.two_level_table(
                self._key(), self._two_level_spec, self._round_impl,
                post=self._affine_post, fmt_name=self.name)
        return self._table2

    # -- scalar path for wide takum-log ------------------------------------
    def _log_nearest_mag(self, a: float) -> int:
        """l-space pattern RNE of a positive finite float, clamped to
        [1, max_mag].  float64 log picks the cell; only inputs within a
        guard band of an l-midpoint (half-spacing >= 2**-28, float log
        error < 1e-13) escalate to the exact decimal comparator."""
        if a == 1.0:
            return self._one_mag
        lf = 2.0 * math.log(a)
        lo, hi = 1, self._max_mag
        if lf < _ell_float(lo << self._shift):
            return 1
        if lf >= _ell_float(hi << self._shift):
            return self._max_mag
        while hi - lo > 1:  # largest mag with l(mag) <= lf
            mid = (lo + hi) // 2
            if _ell_float(mid << self._shift) <= lf:
                lo = mid
            else:
                hi = mid
        hp64 = (lo << self._shift) | (1 << (self._shift - 1))
        d = lf - _ell_float(hp64)
        if abs(d) > 1e-11:
            return lo + 1 if d > 0.0 else lo
        above = _exp_boundary_above(*_half_ell(hp64))
        return lo + 1 if a >= above else lo

    def _log_round_scalar(self, x: float) -> float:
        if not math.isfinite(x):
            return math.nan  # NaR
        if x == 0.0:
            return x
        v = self._decode_mag(self._log_nearest_mag(abs(x)))
        return -v if x < 0.0 else v

    def _wide_log_round(self, arr: np.ndarray) -> np.ndarray:
        out = np.empty(arr.shape, dtype=np.float64)
        flat_in, flat_out = arr.ravel(), out.reshape(-1)
        for i in range(flat_in.size):
            flat_out[i] = self._log_round_scalar(float(flat_in[i]))
        return out

    # -- NumberFormat interface --------------------------------------------
    def round(self, x):
        arr = np.asarray(x, dtype=np.float64)
        scalar = arr.ndim == 0
        if scalar:
            arr = arr.reshape(1)
        if self._table_based:
            out = self._table_round(arr)
        elif self.log:
            out = self._wide_log_round(arr)
        elif lut._ENABLED:
            if arr.size <= self._lut_max_n:
                out = self._lut_table().round_array(arr)
            else:
                out = self._two_level_table().round_array(arr)
        else:
            out = self._round_impl(arr)
        return float(out[0]) if scalar else out

    @property
    def max_value(self) -> float:
        return self._maxpos

    @property
    def min_positive(self) -> float:
        return self._minpos

    @property
    def eps_at_one(self) -> float:
        return self._eps

    @property
    def saturates(self) -> bool:
        return True

    @property
    def is_logarithmic(self) -> bool:
        """True for takum-log: values live on an exponential grid, so
        powers of two (other than 1) are *not* exactly representable."""
        return self.log

    # -- bit-level codec ----------------------------------------------------
    def to_bits(self, value: float) -> int:
        v = float(value)
        if math.isnan(v) or math.isinf(v):
            return self._nar
        v = float(self.round(v))
        if v == 0.0:
            return 0
        if self._table_based:
            values, _, patterns = self._exact_table()
            return int(patterns[np.searchsorted(values, v)])
        a = abs(v)
        if self.log:
            mag = self._log_nearest_mag(a)
        else:
            _, e = math.frexp(a)
            c = e - 1
            p = self.nbits - 5 - _regime_len(c)
            frac = math.ldexp(a, -c) - 1.0  # exact: <= p stored bits
            mag = (_base64(c) >> self._shift) + round(math.ldexp(frac, p))
        return self._npat - mag if v < 0.0 else mag

    def from_bits(self, pattern: int) -> float:
        pattern &= self._npat - 1
        if pattern == 0:
            return 0.0
        if pattern == self._nar:
            return math.nan
        if pattern > self._nar:
            return -self._decode_mag(self._npat - pattern)
        return self._decode_mag(pattern)


TAKUM8 = TakumFormat(8)
TAKUM16 = TakumFormat(16)
TAKUM32 = TakumFormat(32)
TAKUM_LOG8 = TakumFormat(8, log=True)
TAKUM_LOG16 = TakumFormat(16, log=True)
TAKUM_LOG32 = TakumFormat(32, log=True)
