"""IEEE formats with native NumPy storage types.

``Float16``, ``Float32`` and ``Float64`` quantize through a NumPy dtype
cast, which performs IEEE round-to-nearest-even with subnormal support
in hardware — both exact and fast.  Out-of-range values overflow to
±inf exactly as the standard (and the paper's Table II failures)
require.
"""

from __future__ import annotations

import numpy as np

from .base import NumberFormat

__all__ = ["NativeIEEEFormat", "FLOAT16", "FLOAT32", "FLOAT64"]


class NativeIEEEFormat(NumberFormat):
    """An IEEE 754 binary format backed by a native NumPy dtype."""

    def __init__(self, dtype: np.dtype, name: str, display_name: str):
        self._dtype = np.dtype(dtype)
        self.name = name
        self.display_name = display_name
        self.nbits = self._dtype.itemsize * 8
        info = np.finfo(self._dtype)
        self._max = float(info.max)
        self._tiny = float(info.smallest_subnormal)
        self._eps = float(info.eps)

    @property
    def dtype(self) -> np.dtype:
        """The backing NumPy dtype."""
        return self._dtype

    def round(self, x):
        arr = np.asarray(x, dtype=np.float64)
        if self._dtype == np.float64:
            out = arr.copy() if isinstance(x, np.ndarray) else arr
        else:
            with np.errstate(over="ignore"):
                out = arr.astype(self._dtype).astype(np.float64)
        return float(out) if np.isscalar(x) or arr.ndim == 0 else out

    @property
    def max_value(self) -> float:
        return self._max

    @property
    def min_positive(self) -> float:
        return self._tiny

    @property
    def eps_at_one(self) -> float:
        return self._eps

    # -- bit-level codec (hardware layout via NumPy views) ----------------
    _UINT = {2: np.uint16, 4: np.uint32, 8: np.uint64}

    def to_bits(self, value: float) -> int:
        with np.errstate(over="ignore", invalid="ignore"):
            v = self._dtype.type(value)
        return int(v.view(self._UINT[self._dtype.itemsize]))

    def from_bits(self, pattern: int) -> float:
        pattern &= (1 << self.nbits) - 1
        u = self._UINT[self._dtype.itemsize](pattern)
        return float(u.view(self._dtype))


FLOAT16 = NativeIEEEFormat(np.float16, "fp16", "Float16")
FLOAT32 = NativeIEEEFormat(np.float32, "fp32", "Float32")
FLOAT64 = NativeIEEEFormat(np.float64, "fp64", "Float64")
