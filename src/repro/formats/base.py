"""The ``NumberFormat`` interface.

Every arithmetic format the experiments compare — IEEE binary16/32/64,
emulated IEEE variants, and posits — is represented by a
:class:`NumberFormat`.  A format knows how to **quantize** a float64
array to its representable set; the emulated-arithmetic layer
(:mod:`repro.arith`) then implements "compute in float64, round after
every operation", which is exact because float64 holds every value of
every supported format.

Design notes
------------
* Formats are immutable and hashable; they compare by identity key.
* ``round`` must be idempotent, monotone (weakly order-preserving) and
  sign-symmetric — the property-based tests enforce this for every
  registered format.
* ``max_value`` / ``min_positive`` describe the finite representable
  range; ``eps_at_one`` is the spacing just above 1.0, the natural
  cross-format precision yardstick (the posit "golden zone" spacing).
"""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

__all__ = ["NumberFormat"]


class NumberFormat(abc.ABC):
    """Abstract base class for all number formats."""

    #: short machine name, e.g. ``"fp32"`` or ``"posit16es2"``
    name: str = "abstract"
    #: display name used in experiment tables, e.g. ``"Posit(16, 2)"``
    display_name: str = "abstract"
    #: storage width in bits (used for fair-comparison groupings)
    nbits: int = 0

    @abc.abstractmethod
    def round(self, x: np.ndarray | float) -> np.ndarray | float:
        """Quantize float64 values to the nearest representable value.

        Scalars in, scalar out; arrays in, array out.  Must be
        idempotent.  Non-finite inputs map to the format's exceptional
        value (NaN for IEEE and — since the carrier is float64 — for
        posit NaR as well).
        """

    # -- representable-range metadata ------------------------------------
    @property
    @abc.abstractmethod
    def max_value(self) -> float:
        """Largest finite representable magnitude."""

    @property
    @abc.abstractmethod
    def min_positive(self) -> float:
        """Smallest positive representable value (subnormal/minpos)."""

    @property
    @abc.abstractmethod
    def eps_at_one(self) -> float:
        """Spacing between 1.0 and the next larger representable value."""

    @property
    def decimal_digits_at_one(self) -> float:
        """Approximate decimal digits of precision near 1.0."""
        return -float(np.log10(self.eps_at_one))

    @property
    def dynamic_range_decades(self) -> float:
        """log10(max_value / min_positive) — the format's total reach."""
        return float(np.log10(self.max_value) - np.log10(self.min_positive))

    # -- bit-level codec -----------------------------------------------------
    # Patterns are unsigned integers in [0, 2**nbits).  Every format the
    # experiments use implements the pair; the fault-injection layer
    # relies on it to flip single storage bits, and the property tests
    # assert that *every* pattern decodes without raising.
    def to_bits(self, value: float) -> int:
        """Encode *value* (rounded into the format first) as a bit pattern.

        Non-finite values map to the format's exceptional encoding (NaR
        for posit, inf/NaN for IEEE).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement a bit-level codec")

    def from_bits(self, pattern: int) -> float:
        """Decode an ``nbits``-wide bit *pattern* to its float64 value.

        Must accept **any** integer in ``[0, 2**nbits)`` without raising
        — arbitrary patterns are exactly what bit-flip faults produce.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement a bit-level codec")

    # -- behaviour flags ----------------------------------------------------
    @property
    def saturates(self) -> bool:
        """True when out-of-range values clamp (posit) rather than
        overflow to infinity (IEEE)."""
        return False

    # -- identity -----------------------------------------------------------
    def _key(self) -> tuple[Any, ...]:
        return (type(self).__name__, self.name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NumberFormat) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"

    def __str__(self) -> str:
        return self.display_name
