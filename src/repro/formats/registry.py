"""Name → format registry.

Experiments refer to formats by short names (``"fp32"``,
``"posit16es2"``); :func:`get_format` resolves them, with a dynamic
fallback that parses ``positNesE`` / ``ieeeNpPeW`` patterns so users can
ask for arbitrary widths without pre-registration.
"""

from __future__ import annotations

import re

from ..errors import UnknownFormatError
from .base import NumberFormat
from .ieee import BFLOAT16, FP8_E4M3, FP8_E5M2, IEEEFormat
from .native import FLOAT16, FLOAT32, FLOAT64
from .posit_format import (POSIT8_0, POSIT16_1, POSIT16_2, POSIT32_2,
                           POSIT32_3, PositFormat)

__all__ = ["get_format", "register_format", "available_formats"]

_REGISTRY: dict[str, NumberFormat] = {}


def register_format(fmt: NumberFormat, *aliases: str) -> NumberFormat:
    """Register *fmt* under its name and any extra *aliases*."""
    for key in (fmt.name, *aliases):
        _REGISTRY[key.lower()] = fmt
    return fmt


for _fmt, _alias in [
    (FLOAT16, "float16"), (FLOAT32, "float32"), (FLOAT64, "float64"),
    (BFLOAT16, "bfloat16"), (FP8_E4M3, "e4m3"), (FP8_E5M2, "e5m2"),
    (POSIT8_0, "posit8"), (POSIT16_1, None), (POSIT16_2, "posit16"),
    (POSIT32_2, "posit32"), (POSIT32_3, None),
]:
    register_format(_fmt, *([_alias] if _alias else []))

_POSIT_RE = re.compile(r"^posit(\d+)es(\d+)$")
_IEEE_RE = re.compile(r"^ieee(\d+)p(\d+)e(\d+)$")


def get_format(name: str | NumberFormat) -> NumberFormat:
    """Resolve a format by name (case-insensitive) or pass one through.

    Raises :class:`UnknownFormatError` for unresolvable names.
    """
    if isinstance(name, NumberFormat):
        return name
    key = name.strip().lower()
    if key in _REGISTRY:
        return _REGISTRY[key]
    m = _POSIT_RE.match(key)
    if m:
        return register_format(PositFormat(int(m.group(1)), int(m.group(2))))
    m = _IEEE_RE.match(key)
    if m:
        return register_format(IEEEFormat(int(m.group(2)), int(m.group(3))))
    raise UnknownFormatError(
        f"unknown number format {name!r}; known: {sorted(_REGISTRY)}")


def available_formats() -> dict[str, NumberFormat]:
    """A copy of the registry (name → format)."""
    return dict(_REGISTRY)
