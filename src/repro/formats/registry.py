"""Name → format registry.

Experiments refer to formats by short names (``"fp32"``,
``"posit16es2"``); :func:`get_format` resolves them case-insensitively,
accepting the common spellings from the IEEE-754 and posit literature
as aliases (``"binary32"``, ``"single"``, ``"half"``, ``"double"``,
``"p32e2"``, …).  A dynamic fallback parses ``positNesE`` / ``pNeE`` /
``ieeeNpPeW`` patterns so users can ask for arbitrary widths without
pre-registration.  Unresolvable names raise
:class:`~repro.errors.UnknownFormatError` listing the closest known
spellings.

:func:`available_formats` reports every canonical format together with
its registered aliases as :class:`FormatInfo` records.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from difflib import get_close_matches

from ..errors import UnknownFormatError
from .base import NumberFormat
from .ieee import BFLOAT16, FP8_E4M3, FP8_E5M2, IEEEFormat
from .native import FLOAT16, FLOAT32, FLOAT64
from .posit_format import (POSIT8_0, POSIT16_1, POSIT16_2, POSIT32_2,
                           POSIT32_3, PositFormat)
from .takum import (TAKUM8, TAKUM16, TAKUM32, TAKUM_LOG8, TAKUM_LOG16,
                    TAKUM_LOG32, TakumFormat)

__all__ = ["FormatInfo", "get_format", "register_format",
           "available_formats"]

#: canonical (lowercased ``fmt.name``) → format
_FORMATS: dict[str, NumberFormat] = {}
#: alias (lowercased) → canonical key in ``_FORMATS``
_ALIASES: dict[str, str] = {}


@dataclass(frozen=True)
class FormatInfo:
    """One registry entry: the format plus every name that reaches it."""

    canonical: str
    format: NumberFormat
    aliases: tuple[str, ...] = ()

    @property
    def name(self) -> str:
        return self.canonical


def register_format(fmt: NumberFormat, *aliases: str) -> NumberFormat:
    """Register *fmt* under its canonical name and any extra *aliases*."""
    canonical = fmt.name.lower()
    _FORMATS[canonical] = fmt
    for alias in aliases:
        _ALIASES[alias.lower()] = canonical
    return fmt


for _fmt, _aliases in [
    (FLOAT16, ("float16", "half", "binary16", "ieee16")),
    (FLOAT32, ("float32", "single", "binary32", "ieee32")),
    (FLOAT64, ("float64", "double", "binary64", "ieee64")),
    (BFLOAT16, ("bfloat16", "bf16")),
    (FP8_E4M3, ("e4m3",)),
    (FP8_E5M2, ("e5m2",)),
    (POSIT8_0, ("posit8", "p8e0")),
    (POSIT16_1, ("p16e1",)),
    (POSIT16_2, ("posit16", "p16e2")),
    (POSIT32_2, ("posit32", "p32e2")),
    (POSIT32_3, ("p32e3",)),
    (TAKUM8, ("tak8", "takum-8")),
    (TAKUM16, ("tak16", "takum-16")),
    (TAKUM32, ("tak32", "takum-32")),
    (TAKUM_LOG8, ("takumlog8", "takum8log", "taklog8", "takum-log8")),
    (TAKUM_LOG16, ("takumlog16", "takum16log", "taklog16",
                   "takum-log16")),
    (TAKUM_LOG32, ("takumlog32", "takum32log", "taklog32",
                   "takum-log32")),
]:
    register_format(_fmt, *_aliases)

_POSIT_RE = re.compile(r"^posit(\d+)es(\d+)$")
_POSIT_SHORT_RE = re.compile(r"^p(\d+)e(\d+)$")
_IEEE_RE = re.compile(r"^ieee(\d+)p(\d+)e(\d+)$")
#: linear takum: takumN / takN; log takum tolerates the spellings the
#: literature mixes freely (takum_logN, takumlogN, takumNlog, taklogN)
_TAKUM_RE = re.compile(r"^tak(?:um)?[-_]?(\d+)$")
_TAKUM_LOG_RE = re.compile(
    r"^tak(?:um)?[-_]?log[-_]?(\d+)$|^takum[-_]?(\d+)[-_]?log$")


def get_format(name: str | NumberFormat) -> NumberFormat:
    """Resolve a format by name (case-insensitive) or pass one through.

    Raises :class:`UnknownFormatError` for unresolvable names, listing
    near-miss spellings when there are any.
    """
    if isinstance(name, NumberFormat):
        return name
    key = name.strip().lower()
    if key in _FORMATS:
        return _FORMATS[key]
    if key in _ALIASES:
        return _FORMATS[_ALIASES[key]]
    m = _POSIT_RE.match(key) or _POSIT_SHORT_RE.match(key)
    if m:
        return register_format(PositFormat(int(m.group(1)),
                                           int(m.group(2))))
    m = _IEEE_RE.match(key)
    if m:
        return register_format(IEEEFormat(int(m.group(2)),
                                          int(m.group(3))))
    m = _TAKUM_LOG_RE.match(key)          # log first: takumN also matches
    if m:
        nbits = int(m.group(1) or m.group(2))
        # alternate spellings of an already-resolved width reuse it
        canon = _FORMATS.get(f"takum_log{nbits}")
        return canon or register_format(TakumFormat(nbits, log=True))
    m = _TAKUM_RE.match(key)
    if m:
        canon = _FORMATS.get(f"takum{int(m.group(1))}")
        return canon or register_format(TakumFormat(int(m.group(1))))
    known = sorted(set(_FORMATS) | set(_ALIASES))
    near = get_close_matches(key, known, n=3, cutoff=0.6)
    hint = f" (did you mean: {', '.join(near)}?)" if near else ""
    raise UnknownFormatError(
        f"unknown number format {name!r}{hint}; known: {known}")


def available_formats() -> dict[str, FormatInfo]:
    """Canonical name → :class:`FormatInfo` (format plus its aliases)."""
    return {
        canonical: FormatInfo(
            canonical=canonical, format=fmt,
            aliases=tuple(sorted(a for a, c in _ALIASES.items()
                                 if c == canonical)))
        for canonical, fmt in _FORMATS.items()
    }
