"""Generic IEEE 754 softfloat emulation.

Supports any binary interchange-style format given a significand
precision ``p`` (bits, including the hidden bit) and exponent width
``w``: normalized numbers, gradual underflow through subnormals,
round-to-nearest ties-to-even, and overflow to ±inf.  Used for formats
NumPy has no dtype for — bfloat16 and the 8-bit minifloats in the
extension experiments — and as an independent cross-check of the native
fp16/fp32 casts in the test suite.

The quantization trick is the standard one (cf. Higham & Pranesh's
``chop``): scale so the target granule becomes 1.0, ``np.rint`` (which
rounds half to even), scale back.  All intermediate quantities are exact
in float64 for every p ≤ 52 we support.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import FormatError
from ..kernels import lut
from .base import NumberFormat

__all__ = ["IEEEFormat", "BFLOAT16", "FP8_E4M3", "FP8_E5M2"]


class IEEEFormat(NumberFormat):
    """An emulated IEEE binary format with precision *p* and exponent width *w*.

    Parameters
    ----------
    precision:
        Significand bits including the hidden bit (fp16 → 11, fp32 → 24).
    exp_bits:
        Exponent field width (fp16 → 5, fp32 → 8).
    name, display_name:
        Registry and table labels (derived from p/w when omitted).
    """

    def __init__(self, precision: int, exp_bits: int,
                 name: str | None = None, display_name: str | None = None):
        if not (2 <= precision <= 52):
            raise FormatError(f"precision must be in [2, 52], got {precision}")
        if not (2 <= exp_bits <= 11):
            raise FormatError(f"exp_bits must be in [2, 11], got {exp_bits}")
        self.precision = precision
        self.exp_bits = exp_bits
        self.emax = (1 << (exp_bits - 1)) - 1
        self.emin = 1 - self.emax
        self.nbits = 1 + exp_bits + (precision - 1)
        self.name = name or f"ieee{self.nbits}p{precision}e{exp_bits}"
        self.display_name = display_name or \
            f"IEEE(p={precision}, w={exp_bits})"

        # largest finite: (2 - 2**(1-p)) * 2**emax
        self._max = float(np.ldexp(2.0 - np.ldexp(1.0, 1 - precision),
                                   self.emax))
        # smallest positive subnormal: 2**(emin - (p-1))
        self._tiny = float(np.ldexp(1.0, self.emin - (precision - 1)))
        self._eps = float(np.ldexp(1.0, 1 - precision))
        self._lut_max_n = (lut.max_eligible_n(self.nbits)
                           if self.nbits <= lut.MAX_TABLE_BITS else -1)
        self._table = None
        self._table2 = None

    #: per-bucket rounding ufunc of the two-level affine path
    #: (directed-mode subclasses replace it per instance)
    _affine_step = staticmethod(np.rint)

    def _lut_table(self) -> "lut.RoundingTable":
        if self._table is None:
            self._table = lut.rounding_table(
                self._key(),
                lambda: np.array([self.from_bits(p)
                                  for p in range(1 << self.nbits)],
                                 dtype=np.float64),
                self._round_impl, fmt_name=self.name)
        return self._table

    def _two_level_spec(self
                        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Every bucket is affine for an IEEE format: the granule
        ``2**(max(s, emin) - (p-1))`` is a function of the frexp
        exponent alone and :meth:`_round_impl`'s scale/rint/unscale is
        exactly the per-bucket affine step, with overflow handled by
        the *post* hook.  The dense table therefore only ever sees
        non-finite inputs, which it delegates to the reference."""
        e = np.arange(lut.FREXP_E_LO, lut.FREXP_E_LO + lut.FREXP_E_TABLE,
                      dtype=np.int64)
        s_eff = np.maximum(e - 1, np.int64(self.emin))
        g = np.ldexp(1.0, (s_eff - np.int64(self.precision - 1))
                     .astype(np.int32))
        affine = np.ones(lut.FREXP_E_TABLE, dtype=np.bool_)
        candidates = np.array([0.0, self._max, -self._max,
                               np.inf, -np.inf])
        return g, affine, candidates

    def _affine_post(self, r: np.ndarray) -> np.ndarray:
        """Overflow rule of :meth:`_round_impl`, verbatim."""
        overflow_threshold = self._max * (1.0 + 0.5 * self._eps)
        r = np.where(np.abs(r) >= overflow_threshold,
                     np.copysign(np.inf, r), r)
        r = np.where((np.abs(r) > self._max) & np.isfinite(r),
                     np.copysign(self._max, r), r)
        return r

    def _two_level_table(self) -> "lut.TwoLevelTable":
        if self._table2 is None:
            self._table2 = lut.two_level_table(
                self._key(), self._two_level_spec, self._round_impl,
                step=self._affine_step, post=self._affine_post,
                fmt_name=self.name)
        return self._table2

    def round(self, x):
        arr = np.asarray(x, dtype=np.float64)
        scalar = arr.ndim == 0
        if scalar:
            arr = arr.reshape(1)
        if lut._ENABLED:
            if arr.size <= self._lut_max_n:
                out = self._lut_table().round_array(arr)
            else:
                out = self._two_level_table().round_array(arr)
        else:
            out = self._round_impl(arr)
        return float(out[0]) if scalar else out

    def _round_impl(self, arr: np.ndarray) -> np.ndarray:
        out = arr.copy()
        finite = np.isfinite(arr) & (arr != 0)
        if not np.any(finite):
            return out
        v = arr[finite]
        with np.errstate(invalid="ignore"):
            _, e = np.frexp(np.abs(v))
        s = e.astype(np.int64) - 1  # |v| in [2**s, 2**(s+1))
        # effective unbiased exponent after clamping into the subnormal range
        s_eff = np.maximum(s, np.int64(self.emin))
        # granule: ulp = 2**(s_eff - (p-1))
        g_exp = (s_eff - np.int64(self.precision - 1)).astype(np.int32)
        g = np.ldexp(1.0, g_exp)
        with np.errstate(over="ignore"):
            r = np.rint(v / g) * g
        # rounding can push the magnitude to 2**(s+1); that is still exact.
        # overflow: magnitudes beyond the halfway point to the next ulp
        # above max go to inf (IEEE round-to-nearest overflow rule).
        overflow_threshold = self._max * (1.0 + 0.5 * self._eps)
        r = np.where(np.abs(r) >= overflow_threshold,
                     np.copysign(np.inf, r), r)
        r = np.where((np.abs(r) > self._max) & np.isfinite(r),
                     np.copysign(self._max, r), r)
        out[finite] = r
        return out

    @property
    def max_value(self) -> float:
        return self._max

    @property
    def min_positive(self) -> float:
        return self._tiny

    @property
    def eps_at_one(self) -> float:
        return self._eps

    # -- bit-level codec (standard sign/exponent/fraction layout) ----------
    def to_bits(self, value: float) -> int:
        v = float(self.round(float(value)))
        p, w = self.precision, self.exp_bits
        f_bits = p - 1
        sign = 1 if math.copysign(1.0, v) < 0 else 0
        if math.isnan(v):
            # canonical quiet NaN: exponent all ones, top fraction bit set
            return (sign << (w + f_bits)) | (((1 << w) - 1) << f_bits) \
                | (1 << max(f_bits - 1, 0))
        if math.isinf(v):
            return (sign << (w + f_bits)) | (((1 << w) - 1) << f_bits)
        if v == 0.0:
            return sign << (w + f_bits)
        m, e = math.frexp(abs(v))  # |v| = m * 2**e, m in [0.5, 1)
        ue = e - 1
        if ue < self.emin:  # subnormal: exponent field 0
            field_e = 0
            frac = round(math.ldexp(abs(v), (p - 1) - self.emin))
        else:
            field_e = ue + self.emax
            frac = round(math.ldexp(m * 2.0 - 1.0, f_bits))
        return (sign << (w + f_bits)) | (field_e << f_bits) | frac

    def from_bits(self, pattern: int) -> float:
        p, w = self.precision, self.exp_bits
        f_bits = p - 1
        pattern &= (1 << self.nbits) - 1
        sign = -1.0 if pattern >> (w + f_bits) else 1.0
        field_e = (pattern >> f_bits) & ((1 << w) - 1)
        frac = pattern & ((1 << f_bits) - 1)
        if field_e == (1 << w) - 1:
            return math.nan if frac else sign * math.inf
        if field_e == 0:
            return sign * math.ldexp(frac, self.emin - f_bits)
        return sign * math.ldexp(1.0 + math.ldexp(frac, -f_bits),
                                 field_e - self.emax)


#: bfloat16: 8 significand bits, fp32's exponent range
BFLOAT16 = IEEEFormat(8, 8, name="bf16", display_name="BFloat16")
#: OCP FP8 E4M3-style minifloat (without the non-IEEE NaN remapping)
FP8_E4M3 = IEEEFormat(4, 4, name="fp8e4m3", display_name="FP8(E4M3)")
#: OCP FP8 E5M2-style minifloat
FP8_E5M2 = IEEEFormat(3, 5, name="fp8e5m2", display_name="FP8(E5M2)")
