"""Correctly-rounded reference codecs over exact rationals.

One :class:`OracleCodec` per number format answers two questions with
mathematical certainty:

* ``decode``: what exact rational does this bit pattern represent?
* ``nearest``: which bit pattern does a correctly rounded conversion of
  an arbitrary exact rational select?

Both are implemented from the format *specifications* — the Posit
Standard (2022) and IEEE 754 — in unbounded integer arithmetic, sharing
no code with the production paths they exist to check
(:mod:`repro.posit.rounding`'s int64 vectorized kernel, the NumPy-cast
and scale-round tricks in :mod:`repro.formats`).

Rounding semantics
------------------
*IEEE* rounds to the **nearest value**, ties to the even significand,
with gradual underflow and round-to-nearest overflow to infinity
(values at or beyond ``(2 - 2**-p) * 2**emax`` become ±inf).

*Posit* rounds in **extended pattern space**: append the infinite-
precision payload below the ``nbits``-bit pattern and round that real
number to the nearest integer pattern, ties to the even pattern.  In
regions that store fraction bits this coincides with nearest-value
rounding, but in the tapered extremes (no stored fraction bits) the
cut-off between neighbouring posits is *geometric*, not arithmetic —
e.g. for posit(5, 2) the boundary between the representable values
``2**8`` and ``2**12`` sits at ``2**10``, not at their arithmetic mean.
Saturation clamps apply first: ``0 < |x| <= minpos`` rounds to ±minpos
(never to zero) and ``|x| >= maxpos`` to ±maxpos (never to NaR).
"""

from __future__ import annotations

import abc
from functools import lru_cache
from math import inf, nan

from ..errors import OracleUnsupportedFormat
from ..formats.base import NumberFormat
from ..formats.ieee import IEEEFormat
from ..formats.native import NativeIEEEFormat
from ..formats.posit_format import PositFormat
from ..formats.registry import get_format
from ..formats.rounding_modes import DirectedIEEEFormat, StochasticRounding
from ..formats.takum import TakumFormat
from .rational import (Rat, floor_log2_rat, rabs, radd, rcmp, rmul, rsign,
                       to_fraction)

__all__ = ["OracleCodec", "PositOracleCodec", "IEEEOracleCodec",
           "oracle_codec", "TABLE_MAX_NBITS"]

#: widest format for which :meth:`OracleCodec.magnitude_values` will
#: materialize the full table of finite magnitudes
TABLE_MAX_NBITS = 17


def _pow2(s: int) -> Rat:
    return (1 << s, 1) if s >= 0 else (1, 1 << -s)


class OracleCodec(abc.ABC):
    """Exact decode + correctly-rounded encode for one format.

    Finite non-negative values occupy a contiguous, value-monotone range
    of *magnitude patterns* ``0 .. max_mag`` in both supported families;
    signs are applied outside (two's complement for posit, a sign bit
    for IEEE), so all rounding decisions reduce to the magnitude axis.
    """

    #: storage width in bits
    nbits: int
    #: largest finite magnitude pattern
    max_mag: int
    #: True for the posit/takum family: one NaR pattern that absorbs
    #: every operation, two's-complement negation, no infinities
    has_nar: bool = False

    # -- exact decode -------------------------------------------------------
    @abc.abstractmethod
    def decode_mag(self, mag: int) -> Rat:
        """Exact value of a finite magnitude pattern in ``[0, max_mag]``."""

    @abc.abstractmethod
    def decode_float(self, pattern: int) -> float:
        """float64 value of any full ``nbits`` pattern (specials included)."""

    @abc.abstractmethod
    def finite_value(self, pattern: int) -> Rat | None:
        """Exact value of a full pattern, or None for NaR/NaN/±inf."""

    # -- correctly-rounded encode -------------------------------------------
    @abc.abstractmethod
    def nearest_mag(self, q: Rat) -> int:
        """Magnitude pattern selected by correct rounding of ``q > 0``.

        For IEEE the result may be the infinity pattern (overflow).
        """

    @abc.abstractmethod
    def sqrt_mag(self, q: Rat) -> int:
        """Magnitude pattern of the correctly rounded ``sqrt(q)``, ``q > 0``.

        The comparison is performed against the *exact* (generally
        irrational) square root, so the result is correct even when no
        rational approximation of the root would be.
        """

    @abc.abstractmethod
    def _signed_pattern(self, mag: int, negative: bool) -> int:

        ...

    def nearest_pattern(self, q: Rat) -> int:
        """Full pattern selected by correct rounding of any rational."""
        sgn = rsign(q)
        if sgn == 0:
            return 0
        return self._signed_pattern(self.nearest_mag(rabs(q)), sgn < 0)

    def nearest_float(self, q: Rat) -> float:
        return self.decode_float(self.nearest_pattern(q))

    # -- bulk access --------------------------------------------------------
    def all_patterns(self) -> list[int]:
        """Every full bit pattern of the format (``2**nbits`` of them)."""
        return list(range(1 << self.nbits))

    def magnitude_values(self) -> list[Rat]:
        """Exact value of every finite magnitude pattern, index = pattern.

        Materialized once and cached; refused for formats wider than
        ``TABLE_MAX_NBITS`` where the table would be oversized.
        """
        if self.nbits > TABLE_MAX_NBITS:
            raise OracleUnsupportedFormat(
                f"magnitude table for {self.nbits}-bit format would hold "
                f"{self.max_mag + 1} entries; use decode_mag directly")
        cached = getattr(self, "_mag_values", None)
        if cached is None:
            cached = [self.decode_mag(m) for m in range(self.max_mag + 1)]
            self._mag_values = cached
        return cached


class PositOracleCodec(OracleCodec):
    """Reference codec for posit(nbits, es), Posit Standard semantics."""

    has_nar = True

    def __init__(self, nbits: int, es: int):
        if nbits < 2 or es < 0:
            raise OracleUnsupportedFormat(
                f"posit({nbits}, {es}) is not a valid configuration")
        self.nbits = nbits
        self.es = es
        self.npat = 1 << nbits
        self.nar_pattern = 1 << (nbits - 1)
        self.max_mag = self.nar_pattern - 1
        self.max_scale = (nbits - 2) << es
        self.maxpos: Rat = (1 << self.max_scale, 1)
        self.minpos: Rat = (1, 1 << self.max_scale)

    # -- decode -------------------------------------------------------------
    def decode_mag(self, mag: int) -> Rat:
        if mag == 0:
            return (0, 1)
        npos = self.nbits - 1
        first = (mag >> (npos - 1)) & 1
        run, i = 1, npos - 2
        while i >= 0 and ((mag >> i) & 1) == first:
            run += 1
            i -= 1
        k = run - 1 if first else -run
        w = npos - min(run + 1, npos)
        payload = mag & ((1 << w) - 1)
        e_bits = min(self.es, w)
        e = (payload >> (w - e_bits)) << (self.es - e_bits) if e_bits else 0
        f_bits = w - e_bits
        frac = payload & ((1 << f_bits) - 1)
        scale = (k << self.es) + e
        num, den = (1 << f_bits) + frac, 1 << f_bits
        if scale >= 0:
            return (num << scale, den)
        return (num, den << -scale)

    def finite_value(self, pattern: int) -> Rat | None:
        pattern &= self.npat - 1
        if pattern == self.nar_pattern:
            return None
        if pattern > self.nar_pattern:
            num, den = self.decode_mag(self.npat - pattern)
            return (-num, den)
        return self.decode_mag(pattern)

    def decode_float(self, pattern: int) -> float:
        q = self.finite_value(pattern)
        if q is None:
            return nan
        return float(to_fraction(q))

    def _signed_pattern(self, mag: int, negative: bool) -> int:
        return (self.npat - mag) & (self.npat - 1) if negative else mag

    # -- encode -------------------------------------------------------------
    def _fields_at_scale(self, s: int) -> tuple[int, int, int, int]:
        """``(e, regime_base, keep, pattern_base)`` of the octave at 2**s."""
        k = s >> self.es
        e = s - (k << self.es)
        r_len = min(k + 2 if k >= 0 else -k + 1, self.nbits - 1)
        keep = self.nbits - 1 - r_len
        regime = ((1 << (k + 1)) - 1) << 1 if k >= 0 else 1
        return e, regime, keep, regime << keep

    def nearest_mag(self, q: Rat) -> int:
        if rcmp(q, self.minpos) <= 0:
            return 1
        if rcmp(q, self.maxpos) >= 0:
            return self.max_mag
        num, den = q
        s = floor_log2_rat(q)
        e, _, keep, base = self._fields_at_scale(s)
        # t = q / 2**s - 1 in [0, 1), exactly
        if s >= 0:
            t_num, t_den = num - (den << s), den << s
        else:
            t_num, t_den = (num << -s) - den, den
        # extended pattern = base + (e + t) * 2**(keep - es); round RNE
        p_num, p_den = e * t_den + t_num, t_den
        shift = keep - self.es
        if shift >= 0:
            p_num <<= shift
        else:
            p_den <<= -shift
        whole, rem = divmod(p_num, p_den)
        pattern = base + whole
        twice = 2 * rem
        if twice > p_den or (twice == p_den and pattern & 1):
            pattern += 1
        # rounding up may step past maxpos's neighbour; clamp, never NaR
        return min(max(pattern, 1), self.max_mag)

    def sqrt_mag(self, q: Rat) -> int:
        # sqrt(q) <= minpos  <=>  q <= minpos**2  (and mirrored for maxpos)
        if rcmp(q, (1, 1 << (2 * self.max_scale))) <= 0:
            return 1
        if rcmp(q, (1 << (2 * self.max_scale), 1)) >= 0:
            return self.max_mag
        lo = _bisect_sqrt(self, q)
        v_lo = self.decode_mag(lo)
        if rcmp(rmul(v_lo, v_lo), q) == 0:
            return lo
        # Decide lo vs lo+1 by the pattern-space rule applied to the
        # exact root r = sqrt(q): compare ext(r) with lo + 1/2, rewritten
        # through the octave of r so only rational comparisons remain.
        s = floor_log2_rat(q) >> 1          # floor(log2(sqrt(q)))
        e, _, keep, base = self._fields_at_scale(s)
        # ext(r) >= lo + 1/2
        #   <=>  r/2**s >= (lo + 1/2 - base) * 2**(es - keep) - e + 1 =: T
        #   <=>  r >= 2**s * T =: C,   decided via  q  vs  C**2
        t_num, t_den = 2 * (lo - base) + 1, 2       # lo + 1/2 - base
        shift = self.es - keep
        if shift >= 0:
            t_num <<= shift
        else:
            t_den <<= -shift
        c_num, c_den = t_num + (1 - e) * t_den, t_den
        if s >= 0:
            c_num <<= s
        else:
            c_den <<= -s
        if c_num <= 0:                              # C <= 0 < r: round up
            return lo + 1
        d = rcmp(q, (c_num * c_num, c_den * c_den))
        if d > 0:
            return lo + 1
        if d < 0:
            return lo
        return lo if lo % 2 == 0 else lo + 1        # exact tie: even pattern


class IEEEOracleCodec(OracleCodec):
    """Reference codec for IEEE binary formats (precision p, width w)."""

    def __init__(self, precision: int, exp_bits: int):
        if precision < 2 or exp_bits < 2:
            raise OracleUnsupportedFormat(
                f"IEEE(p={precision}, w={exp_bits}) is not supported")
        self.precision = precision
        self.exp_bits = exp_bits
        self.f_bits = precision - 1
        self.nbits = 1 + exp_bits + self.f_bits
        self.emax = (1 << (exp_bits - 1)) - 1
        self.emin = 1 - self.emax
        self.inf_mag = ((1 << exp_bits) - 1) << self.f_bits
        self.max_mag = self.inf_mag - 1
        #: largest finite value, (2**p - 1) * 2**(emax - p + 1)
        self.max_finite: Rat = self._scaled((1 << precision) - 1,
                                            self.emax - precision + 1)
        #: RNE overflow boundary, (2**(p+1) - 1) * 2**(emax - p)
        self.overflow: Rat = self._scaled((1 << (precision + 1)) - 1,
                                          self.emax - precision)

    @staticmethod
    def _scaled(num: int, scale: int) -> Rat:
        return (num << scale, 1) if scale >= 0 else (num, 1 << -scale)

    # -- decode -------------------------------------------------------------
    def decode_mag(self, mag: int) -> Rat:
        field_e = mag >> self.f_bits
        frac = mag & ((1 << self.f_bits) - 1)
        if field_e == 0:                            # subnormal (or zero)
            return self._scaled(frac, self.emin - self.f_bits)
        return self._scaled((1 << self.f_bits) + frac,
                            field_e - self.emax - self.f_bits)

    def finite_value(self, pattern: int) -> Rat | None:
        pattern &= (1 << self.nbits) - 1
        mag = pattern & ((1 << (self.nbits - 1)) - 1)
        if mag >= self.inf_mag:
            return None
        num, den = self.decode_mag(mag)
        return (-num, den) if pattern >> (self.nbits - 1) else (num, den)

    def decode_float(self, pattern: int) -> float:
        pattern &= (1 << self.nbits) - 1
        mag = pattern & ((1 << (self.nbits - 1)) - 1)
        sign = -1.0 if pattern >> (self.nbits - 1) else 1.0
        if mag > self.inf_mag:
            return nan
        if mag == self.inf_mag:
            return sign * inf
        return sign * float(to_fraction(self.decode_mag(mag)))

    def _signed_pattern(self, mag: int, negative: bool) -> int:
        return mag | (1 << (self.nbits - 1)) if negative else mag

    # -- encode -------------------------------------------------------------
    def nearest_mag(self, q: Rat) -> int:
        if rcmp(q, self.overflow) >= 0:             # RNE overflow -> inf
            return self.inf_mag
        if rcmp(q, self.max_finite) >= 0:
            return self.max_mag
        lo, hi = 0, self.max_mag                    # v(lo) <= q < v(hi)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if rcmp(self.decode_mag(mid), q) <= 0:
                lo = mid
            else:
                hi = mid
        d = rcmp(radd(q, q),
                 radd(self.decode_mag(lo), self.decode_mag(hi)))
        if d > 0:
            return hi
        if d < 0:
            return lo
        return lo if lo % 2 == 0 else hi            # tie: even significand

    def sqrt_mag(self, q: Rat) -> int:
        ov = self.overflow
        if rcmp(q, rmul(ov, ov)) >= 0:              # sqrt(q) overflows
            return self.inf_mag
        mx = self.max_finite
        if rcmp(q, rmul(mx, mx)) >= 0:
            return self.max_mag
        lo = _bisect_sqrt(self, q)
        hi = lo + 1
        v_lo = self.decode_mag(lo)
        if rcmp(rmul(v_lo, v_lo), q) == 0:
            return lo
        # nearest value: sqrt(q) vs midpoint m, via 4q vs (v_lo + v_hi)**2
        m2 = radd(v_lo, self.decode_mag(hi))
        d = rcmp(rmul((4, 1), q), rmul(m2, m2))
        if d > 0:
            return hi
        if d < 0:
            return lo
        return lo if lo % 2 == 0 else hi


def _bisect_sqrt(codec: OracleCodec, q: Rat) -> int:
    """Largest magnitude pattern whose square does not exceed ``q``.

    Callers guarantee ``decode_mag(0)**2 <= q < decode_mag(max_mag)**2``.
    """
    lo, hi = 0, codec.max_mag
    while hi - lo > 1:
        mid = (lo + hi) // 2
        v = codec.decode_mag(mid)
        if rcmp(rmul(v, v), q) <= 0:
            lo = mid
        else:
            hi = mid
    return lo


#: native NumPy-backed formats and their (precision, exponent-width)
_NATIVE_PARAMS = {"fp16": (11, 5), "fp32": (24, 8), "fp64": (53, 11)}


@lru_cache(maxsize=None)
def _codec_for(fmt: NumberFormat) -> OracleCodec:
    if isinstance(fmt, PositFormat):
        return PositOracleCodec(fmt.nbits, fmt.es)
    if isinstance(fmt, TakumFormat):
        # local import: takum_codec extends OracleCodec from this module
        from .takum_codec import takum_oracle_codec
        return takum_oracle_codec(fmt.nbits, log=fmt.log)
    if isinstance(fmt, NativeIEEEFormat):
        try:
            return IEEEOracleCodec(*_NATIVE_PARAMS[fmt.name])
        except KeyError:
            raise OracleUnsupportedFormat(
                f"no oracle parameters for native format {fmt.name!r}")
    if isinstance(fmt, (DirectedIEEEFormat, StochasticRounding)):
        raise OracleUnsupportedFormat(
            f"{fmt.name}: the oracle models round-to-nearest-even only")
    if isinstance(fmt, IEEEFormat):
        return IEEEOracleCodec(fmt.precision, fmt.exp_bits)
    raise OracleUnsupportedFormat(
        f"no oracle codec for format class {type(fmt).__name__}")


def oracle_codec(fmt: NumberFormat | str) -> OracleCodec:
    """The :class:`OracleCodec` for *fmt* (name or instance), cached."""
    return _codec_for(get_format(fmt))
