"""Exact rational arithmetic kernel for the oracle.

The oracle's job is to compute what an operation *should* produce before
any finite format gets involved, so every quantity here is an exact
rational held as a ``(numerator, denominator)`` pair of unbounded Python
integers with a positive denominator.  Pairs are deliberately **not**
reduced to lowest terms: the gcd normalization that
:class:`fractions.Fraction` performs on every operation dominates its
cost, and the differential sweeps perform tens of millions of oracle
operations.  All comparisons cross-multiply, so unreduced pairs are
exact regardless.

:class:`fractions.Fraction` remains the friendly boundary type —
:func:`to_fraction` / :func:`rat` convert at the edges.
"""

from __future__ import annotations

from fractions import Fraction
from math import isqrt
from typing import Iterable, Tuple, Union

__all__ = [
    "Rat", "rat", "to_fraction",
    "radd", "rsub", "rmul", "rdiv", "rneg", "rabs",
    "rcmp", "rsign", "is_zero",
    "rsum", "rdot", "rfma",
    "floor_log2_rat", "floor_sqrt_scaled",
]

#: an exact rational: ``(num, den)`` with ``den > 0`` (not normalized)
Rat = Tuple[int, int]

RealLike = Union[int, float, Fraction, Rat]


def rat(value: RealLike) -> Rat:
    """Convert an int/float/Fraction/pair to an exact ``(num, den)`` pair.

    Floats convert exactly (every finite float is a dyadic rational);
    non-finite floats are rejected — special values never reach the
    rational layer, the reference ops handle them first.
    """
    if isinstance(value, tuple):
        num, den = value
        if den <= 0:
            raise ValueError(f"denominator must be positive, got {den}")
        return value
    if isinstance(value, bool):
        raise TypeError("bool is not a rational operand")
    if isinstance(value, int):
        return (value, 1)
    if isinstance(value, float):
        # raises OverflowError/ValueError for inf/nan, as intended
        return value.as_integer_ratio()
    if isinstance(value, Fraction):
        return (value.numerator, value.denominator)
    raise TypeError(f"unsupported rational operand {type(value)!r}")


def to_fraction(q: Rat) -> Fraction:
    """The normalized :class:`~fractions.Fraction` equal to *q*."""
    return Fraction(q[0], q[1])


# -- arithmetic (exact, no normalization) -----------------------------------

def radd(a: Rat, b: Rat) -> Rat:
    return (a[0] * b[1] + b[0] * a[1], a[1] * b[1])


def rsub(a: Rat, b: Rat) -> Rat:
    return (a[0] * b[1] - b[0] * a[1], a[1] * b[1])


def rmul(a: Rat, b: Rat) -> Rat:
    return (a[0] * b[0], a[1] * b[1])


def rdiv(a: Rat, b: Rat) -> Rat:
    """Exact quotient; raises :class:`ZeroDivisionError` when ``b == 0``."""
    if b[0] == 0:
        raise ZeroDivisionError("rational division by zero")
    num, den = a[0] * b[1], a[1] * b[0]
    if den < 0:
        num, den = -num, -den
    return (num, den)


def rneg(a: Rat) -> Rat:
    return (-a[0], a[1])


def rabs(a: Rat) -> Rat:
    return (abs(a[0]), a[1])


# -- predicates -------------------------------------------------------------

def rcmp(a: Rat, b: Rat) -> int:
    """Sign of ``a - b``: -1, 0 or +1 (exact cross-multiplication)."""
    lhs = a[0] * b[1]
    rhs = b[0] * a[1]
    return (lhs > rhs) - (lhs < rhs)


def rsign(a: Rat) -> int:
    return (a[0] > 0) - (a[0] < 0)


def is_zero(a: Rat) -> bool:
    return a[0] == 0


# -- reductions (exact; rounding is the caller's business) ------------------

def rsum(terms: Iterable[Rat]) -> Rat:
    acc = (0, 1)
    for t in terms:
        acc = radd(acc, t)
    return acc


def rdot(xs: Iterable[RealLike], ys: Iterable[RealLike]) -> Rat:
    """Exact inner product of two equal-length sequences."""
    xs, ys = list(xs), list(ys)
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    return rsum(rmul(rat(x), rat(y)) for x, y in zip(xs, ys))


def rfma(a: RealLike, b: RealLike, c: RealLike) -> Rat:
    """Exact fused multiply-add ``a*b + c`` (single mathematical value)."""
    return radd(rmul(rat(a), rat(b)), rat(c))


# -- exact logarithm / square-root helpers ----------------------------------

def floor_log2_rat(q: Rat) -> int:
    """Exact ``floor(log2(q))`` for a positive rational ``(num, den)``."""
    num, den = q
    if num <= 0:
        raise ValueError("floor_log2_rat requires a positive value")
    s = num.bit_length() - den.bit_length()
    # candidate from bit lengths is off by at most one: q >= 2**s ?
    if s >= 0:
        if num < den << s:
            s -= 1
    else:
        if num << (-s) < den:
            s -= 1
    return s


def floor_sqrt_scaled(q: Rat, shift: int = 0) -> int:
    """Exact ``floor(sqrt(q) * 2**shift)`` for a non-negative rational.

    Used to seed square-root bracketing without floating-point error.
    ``floor(sqrt(a/b) * 2^t) = floor(sqrt(a*b*4^t) / b)``, and dividing
    the integer square root by ``b`` with floor division is exact
    because no multiple of ``b`` can lie strictly between
    ``isqrt(a*b*4^t)`` and the real root.
    """
    num, den = q
    if num < 0:
        raise ValueError("floor_sqrt_scaled requires a non-negative value")
    return isqrt(num * den << (2 * shift)) // den
