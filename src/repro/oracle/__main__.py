"""``python -m repro.oracle`` runs the conformance CLI."""

from .conformance import main

if __name__ == "__main__":
    raise SystemExit(main())
