"""Differential conformance engine: production paths vs the exact oracle.

Sweeps operand bit patterns through every scalar operation of
:class:`repro.arith.FPContext`, the dot/axpy/matvec kernels, and the
bit-level codecs (``round`` / ``to_bits`` / ``from_bits``), comparing
each result bit-for-bit against the exact-rational reference in
:mod:`repro.oracle.reference`.  This plays the role GNU GMP played for
the paper's C++ library: nothing in the experiment stack is trusted
until it agrees with unbounded-precision arithmetic.

Two sweep modes, chosen automatically per (format, operation):

* **exhaustive** — every operand pattern (unary ops) or every operand
  pair (binary ops) for formats narrow enough to enumerate;
* **stratified** — boundary-biased random sampling for wider formats:
  the pools over-weight ±minpos/±maxpos, powers of two, regime
  transitions, the IEEE subnormal boundary, NaR/±inf/NaN and the
  pattern-space neighbours of all of the above.

Divergences are reported as bit patterns and shrunk toward the simplest
operands that still disagree, so a failure report is immediately
replayable::

    python -m repro.oracle.conformance --tier 1
    python -m repro.oracle.conformance --formats posit16es2 --ops div

The CLI writes a machine-readable JSON report under ``results/`` and
exits non-zero when any divergence survives.  ``--tier 2`` is the
nightly configuration: exhaustive pair sweeps for every posit with
``nbits <= 10`` and ``es <= 2``, every takum (linear and logarithmic)
with ``nbits <= 10``, and the 8-bit IEEE minifloats, plus exhaustive
unary sweeps up to 16 bits (float16 and takum16 included).
"""

from __future__ import annotations

import argparse
import sys
import time
import zlib
from dataclasses import asdict, dataclass, field

import numpy as np

from ..analysis.reporting import write_json
from ..arith.context import FPContext
from ..formats.registry import get_format
from .codecs import IEEEOracleCodec, oracle_codec
from .rational import rat
from .reference import (format_contract, oracle_scalar, ref_axpy,
                        ref_dot, ref_matvec, ref_round, same_value)

__all__ = [
    "OpReport", "BINARY_OPS", "UNARY_OPS", "CODEC_OPS", "KERNEL_OPS",
    "ALL_OPS", "conformance_formats", "sweep_format", "run_conformance",
    "boundary_biased_patterns", "main",
]

BINARY_OPS = ("add", "sub", "mul", "div")
UNARY_OPS = ("sqrt",)
CODEC_OPS = ("round", "encode", "decode")
KERNEL_OPS = ("dot", "axpy", "matvec")
ALL_OPS = BINARY_OPS + UNARY_OPS + CODEC_OPS + KERNEL_OPS

#: widest format swept pair-exhaustively, per tier
EXHAUSTIVE_NBITS = {1: 8, 2: 10}
#: widest format swept value-exhaustively for unary/codec ops, per tier
UNARY_EXHAUSTIVE_NBITS = {1: 10, 2: 16}
#: stratified pool size (values; pairs are sampled from the pool), per tier
DEFAULT_SAMPLES = {1: 1500, 2: 6000}

_TIER1_FORMATS = (
    "posit4es0", "posit4es1", "posit5es1", "posit6es0", "posit6es1",
    "posit6es2", "posit8es0", "posit8es1", "posit8es2",
    "fp8e4m3", "fp8e5m2",
    "takum6", "takum8", "takum_log6", "takum_log8",
    "posit16es1", "posit16es2", "posit32es2", "fp16", "bf16", "fp32",
    "takum16", "takum32", "takum_log16", "takum_log32",
)

_TIER2_FORMATS = tuple(
    f"posit{n}es{es}" for n in range(3, 11) for es in range(0, 3)
) + tuple(f"takum{n}" for n in range(6, 11)) \
  + tuple(f"takum_log{n}" for n in range(6, 11)) \
  + ("fp8e4m3", "fp8e5m2", "fp16", "bf16",
     "posit16es1", "posit16es2", "posit32es2", "posit32es3",
     "takum16", "takum32", "takum_log16", "takum_log32",
     "fp32", "fp64")


def conformance_formats(tier: int) -> tuple[str, ...]:
    """The format grid swept at a given tier."""
    return _TIER1_FORMATS if tier == 1 else _TIER2_FORMATS


@dataclass
class OpReport:
    """Outcome of sweeping one operation of one format."""

    format: str
    op: str
    mode: str                   # exhaustive | stratified
    checked: int
    divergences: int
    elapsed: float
    first: list = field(default_factory=list)   # minimized repro cases
    contract: str = "exact"     # exact | carrier (see format_contract)

    @property
    def ok(self) -> bool:
        return self.divergences == 0


# ---------------------------------------------------------------------------
# Operand pools
# ---------------------------------------------------------------------------

def _special_magnitudes(codec) -> list[int]:
    """Boundary magnitude patterns: extremes, 1.0, powers of two."""
    mags = {0, 1, 2, 3, codec.max_mag, codec.max_mag - 1, codec.max_mag - 2}
    if isinstance(codec, IEEEOracleCodec):
        # the subnormal/normal boundary and its neighbourhood
        boundary = 1 << codec.f_bits
        mags.update({boundary - 1, boundary, boundary + 1})
        lo_scale, hi_scale = codec.emin, codec.emax
    else:
        lo_scale, hi_scale = -codec.max_scale, codec.max_scale
    # powers of two across the whole dynamic range (regime transitions
    # for posit, binade edges for IEEE), plus pattern-space neighbours
    span = max(1, (hi_scale - lo_scale) // 24)
    for s in range(lo_scale, hi_scale + 1, span):
        m = codec.nearest_mag(rat(2) if s == 1 else
                              ((1 << s, 1) if s >= 0 else (1, 1 << -s)))
        mags.update({m - 1, m, m + 1})
    mags.add(codec.nearest_mag((1, 1)))       # 1.0
    return sorted(m for m in mags if 0 <= m <= codec.max_mag)


def boundary_biased_patterns(fmt, count: int,
                             rng: np.random.Generator) -> list[int]:
    """A deduplicated, boundary-biased pool of full operand patterns.

    Always contains the format's special values (±0, ±minpos, ±maxpos,
    ±1, NaR or ±inf/NaN, the IEEE subnormal boundary) and their bit
    neighbours; the remainder is uniform over the pattern space.
    """
    codec = oracle_codec(fmt)
    patterns: list[int] = []
    for m in _special_magnitudes(codec):
        patterns.append(codec._signed_pattern(m, False))
        if m:
            patterns.append(codec._signed_pattern(m, True))
    if codec.has_nar:
        patterns.append(codec.nar_pattern)
    else:
        sign_bit = 1 << (codec.nbits - 1)
        patterns += [codec.inf_mag, codec.inf_mag | sign_bit,
                     codec.inf_mag + 1]                     # ±inf, NaN
    npat = 1 << codec.nbits
    while len(set(patterns)) < count:
        need = count - len(set(patterns))
        patterns += [int(p) for p in rng.integers(0, npat, need)]
    return list(dict.fromkeys(patterns))[:max(count, len(set(patterns)))]


def _all_patterns(codec) -> list[int]:
    return list(range(1 << codec.nbits))


def _round_inputs(codec, patterns: list[int],
                  rng: np.random.Generator) -> list[float]:
    """Test points for the quantizer: values, cell interiors, randoms.

    Any float64 is a legitimate probe (the oracle evaluates its exact
    rational), so interior points computed in floating point are fine.
    """
    values = sorted({codec.decode_float(p) for p in patterns
                     if np.isfinite(codec.decode_float(p))})
    points = list(values)
    for lo, hi in zip(values, values[1:]):
        width = hi - lo
        if np.isfinite(width) and width > 0:
            points += [lo + 0.25 * width, lo + 0.5 * width,
                       lo + 0.75 * width]
    points += [float(v) for v in rng.normal(0.0, 1.0, 64)]
    points += [float(np.nan), float(np.inf), float(-np.inf)]
    return points


# ---------------------------------------------------------------------------
# Divergence records and shrinking
# ---------------------------------------------------------------------------

def _jf(x: float):
    """JSON-safe float: non-finite values become strings."""
    x = float(x)
    return x if np.isfinite(x) else repr(x)


def _record(codec, op: str, pats: tuple, got: float, want: float) -> dict:
    return {
        "op": op,
        "operands": [f"0x{p:0{(codec.nbits + 3) // 4}x}" for p in pats],
        "operand_values": [_jf(codec.decode_float(p)) for p in pats],
        "got": _jf(got),
        "want": _jf(want),
    }


def _shrink_scalar(fmt, op: str, pats: tuple[int, ...],
                   contract: str = "exact",
                   max_steps: int = 200) -> tuple[int, ...]:
    """Greedily shrink a divergent operand tuple toward simpler patterns.

    A candidate replacement is kept only if the divergence survives, so
    the returned tuple is always a genuine repro case.
    """
    codec = oracle_codec(fmt)
    ctx = FPContext(fmt)
    oracle = oracle_scalar(fmt, contract)

    def diverges(cand: tuple[int, ...]) -> bool:
        vals = [codec.decode_float(p) for p in cand]
        impl = float(getattr(ctx, op)(*vals))
        want = oracle(op, *vals)
        return not same_value(impl, want)

    pats = tuple(pats)
    for _ in range(max_steps):
        for slot, p in enumerate(pats):
            for cand in (0, p >> 1, p & (p - 1), p - 1):
                if cand == p or cand < 0:
                    continue
                trial = pats[:slot] + (cand,) + pats[slot + 1:]
                if diverges(trial):
                    pats = trial
                    break
            else:
                continue
            break
        else:
            return pats
    return pats


# ---------------------------------------------------------------------------
# Per-operation checks
# ---------------------------------------------------------------------------

def _check_binary(fmt, op: str, pairs: list[tuple[int, int]], mode: str,
                  max_first: int) -> OpReport:
    codec = oracle_codec(fmt)
    contract = format_contract(fmt)
    oracle = oracle_scalar(fmt, contract)
    ctx = FPContext(fmt)
    t0 = time.perf_counter()

    fls = {p: codec.decode_float(p)
           for p in {q for pair in pairs for q in pair}}
    a = np.fromiter((fls[pa] for pa, _ in pairs), np.float64, len(pairs))
    b = np.fromiter((fls[pb] for _, pb in pairs), np.float64, len(pairs))
    got = np.asarray(getattr(ctx, op)(a, b), dtype=np.float64)

    first: list[dict] = []
    bad = 0
    for idx, (pa, pb) in enumerate(pairs):
        want = oracle(op, fls[pa], fls[pb])
        g = float(got[idx])
        if not same_value(g, want):
            bad += 1
            if len(first) < max_first:
                spa, spb = _shrink_scalar(fmt, op, (pa, pb), contract)
                va, vb = codec.decode_float(spa), codec.decode_float(spb)
                rec = _record(codec, op, (spa, spb),
                              float(getattr(ctx, op)(va, vb)),
                              oracle(op, va, vb))
                rec["unshrunk_operands"] = _record(
                    codec, op, (pa, pb), g, want)["operands"]
                first.append(rec)
    return OpReport(get_format(fmt).name, op, mode, len(pairs), bad,
                    time.perf_counter() - t0, first, contract)


def _check_sqrt(fmt, patterns: list[int], mode: str,
                max_first: int) -> OpReport:
    codec = oracle_codec(fmt)
    contract = format_contract(fmt)
    oracle = oracle_scalar(fmt, contract)
    ctx = FPContext(fmt)
    t0 = time.perf_counter()
    fls = [codec.decode_float(p) for p in patterns]
    got = np.asarray(ctx.sqrt(np.asarray(fls)), dtype=np.float64)
    first, bad = [], 0
    for idx, p in enumerate(patterns):
        want = oracle("sqrt", fls[idx])
        if not same_value(float(got[idx]), want):
            bad += 1
            if len(first) < max_first:
                (sp,) = _shrink_scalar(fmt, "sqrt", (p,), contract)
                v = codec.decode_float(sp)
                first.append(_record(codec, "sqrt", (sp,),
                                     float(ctx.sqrt(v)),
                                     oracle("sqrt", v)))
    return OpReport(get_format(fmt).name, "sqrt", mode, len(patterns),
                    bad, time.perf_counter() - t0, first, contract)


def _check_round(fmt, points: list[float], mode: str,
                 max_first: int) -> OpReport:
    fobj = get_format(fmt)
    t0 = time.perf_counter()
    with np.errstate(all="ignore"):
        got = np.asarray(fobj.round(np.asarray(points, dtype=np.float64)),
                         dtype=np.float64)
    first, bad = [], 0
    for idx, x in enumerate(points):
        want = ref_round(fmt, x)
        if not same_value(float(got[idx]), want):
            bad += 1
            if len(first) < max_first:
                first.append({"op": "round", "operands": [repr(x)],
                              "operand_values": [_jf(x)],
                              "got": _jf(got[idx]), "want": _jf(want)})
    return OpReport(fobj.name, "round", mode, len(points), bad,
                    time.perf_counter() - t0, first)


def _check_encode(fmt, points: list[float], mode: str,
                  max_first: int) -> OpReport:
    fobj = get_format(fmt)
    codec = oracle_codec(fmt)
    t0 = time.perf_counter()
    first, bad, checked = [], 0, 0
    for x in points:
        # zero signs and non-finite encodings are format-private; the
        # decode sweep covers those patterns' values instead
        if not np.isfinite(x) or x == 0.0:
            continue
        checked += 1
        got = fobj.to_bits(float(x))
        want = codec.nearest_pattern(rat(float(x)))
        if got != want:
            bad += 1
            if len(first) < max_first:
                first.append({"op": "encode", "operands": [repr(float(x))],
                              "operand_values": [float(x)],
                              "got": f"0x{got:x}", "want": f"0x{want:x}"})
    return OpReport(fobj.name, "encode", mode, checked, bad,
                    time.perf_counter() - t0, first)


def _check_decode(fmt, patterns: list[int], mode: str,
                  max_first: int) -> OpReport:
    fobj = get_format(fmt)
    codec = oracle_codec(fmt)
    t0 = time.perf_counter()
    first, bad = [], 0
    for p in patterns:
        got = fobj.from_bits(p)
        want = codec.decode_float(p)
        if not same_value(got, want):
            bad += 1
            if len(first) < max_first:
                first.append(_record(codec, "decode", (p,), got, want))
    return OpReport(fobj.name, "decode", mode, len(patterns), bad,
                    time.perf_counter() - t0, first)


_KERNEL_LENGTHS = (1, 2, 3, 5, 8, 16)
_MATVEC_SHAPES = ((2, 3), (3, 5), (4, 4))


def _check_kernel(fmt, op: str, pool: list[float], seed: int,
                  max_first: int) -> OpReport:
    fobj = get_format(fmt)
    contract = format_contract(fmt)
    rng = np.random.default_rng(seed)
    finite = [v for v in pool if np.isfinite(v)] or [0.0]

    def draw(n: int) -> list[float]:
        return [float(finite[i]) for i in rng.integers(0, len(finite), n)]

    t0 = time.perf_counter()
    first, bad, checked = [], 0, 0

    def compare(got, want, detail: dict) -> None:
        nonlocal bad, checked
        checked += 1
        got, want = np.atleast_1d(got), np.atleast_1d(np.asarray(want))
        ok = all(same_value(float(g), float(w))
                 for g, w in zip(got, want))
        if not ok:
            bad += 1
            if len(first) < max_first:
                first.append({"op": op, "got": [_jf(g) for g in got],
                              "want": [_jf(w) for w in want], **detail})

    # overflowed products (±inf carriers) legitimately cancel inside the
    # summation fold; silence the resulting numpy warnings
    with np.errstate(all="ignore"):
        for order in ("pairwise", "sequential"):
            ctx = FPContext(fmt, sum_order=order)
            if op == "dot":
                for n in _KERNEL_LENGTHS:
                    for _trial in range(2):
                        xs, ys = draw(n), draw(n)
                        compare(ctx.dot(np.asarray(xs), np.asarray(ys)),
                                ref_dot(fmt, xs, ys, order=order,
                                        contract=contract),
                                {"order": order, "x": xs, "y": ys})
            elif op == "axpy":
                if order == "sequential":
                    continue            # axpy has no summation order
                for n in _KERNEL_LENGTHS:
                    for _trial in range(2):
                        alpha, xs, ys = draw(1)[0], draw(n), draw(n)
                        compare(ctx.axpy(alpha, np.asarray(xs),
                                         np.asarray(ys)),
                                ref_axpy(fmt, alpha, xs, ys,
                                         contract=contract),
                                {"alpha": alpha, "x": xs, "y": ys})
            elif op == "matvec":
                for rows, cols in _MATVEC_SHAPES:
                    A = [draw(cols) for _ in range(rows)]
                    x = draw(cols)
                    compare(ctx.matvec(np.asarray(A), np.asarray(x)),
                            ref_matvec(fmt, A, x, order=order,
                                       contract=contract),
                            {"order": order, "A": A, "x": x})
    return OpReport(fobj.name, op, "stratified", checked, bad,
                    time.perf_counter() - t0, first, contract)


# ---------------------------------------------------------------------------
# Sweeps
# ---------------------------------------------------------------------------

def sweep_format(fmt, ops=ALL_OPS, *, exhaustive_nbits: int = 8,
                 unary_exhaustive_nbits: int = 10, samples: int = 1500,
                 seed: int = 0xBEEF, max_first: int = 5,
                 progress=None) -> list[OpReport]:
    """Run the requested conformance ops for one format."""
    fobj = get_format(fmt)
    codec = oracle_codec(fobj)
    # crc32, not hash(): per-format streams must be run-to-run stable
    rng = np.random.default_rng(seed ^ zlib.crc32(fobj.name.encode()))
    pair_exhaustive = codec.nbits <= exhaustive_nbits
    unary_exhaustive = codec.nbits <= unary_exhaustive_nbits

    if pair_exhaustive or unary_exhaustive:
        everything = _all_patterns(codec)
    pool = boundary_biased_patterns(fobj, min(samples, 1 << codec.nbits),
                                    rng)
    unary_patterns = everything if unary_exhaustive else pool
    if pair_exhaustive:
        pairs = [(pa, pb) for pa in everything for pb in everything]
        pair_mode = "exhaustive"
    else:
        specials = pool[:48]
        pairs = [(pa, pb) for pa in specials for pb in specials]
        n_random = max(0, samples - len(pairs))
        idx = rng.integers(0, len(pool), (n_random, 2))
        pairs += [(pool[i], pool[j]) for i, j in idx]
        pair_mode = "stratified"
    unary_mode = "exhaustive" if unary_exhaustive else "stratified"

    reports = []
    pool_floats = None
    for op in ops:
        if progress is not None:
            progress(fobj.name, op)
        if op in BINARY_OPS:
            reports.append(_check_binary(fobj, op, pairs, pair_mode,
                                         max_first))
        elif op == "sqrt":
            reports.append(_check_sqrt(fobj, unary_patterns, unary_mode,
                                       max_first))
        elif op in ("round", "encode"):
            points = _round_inputs(codec, unary_patterns, rng)
            check = _check_round if op == "round" else _check_encode
            reports.append(check(fobj, points, unary_mode, max_first))
        elif op == "decode":
            reports.append(_check_decode(fobj, unary_patterns,
                                         unary_mode, max_first))
        elif op in KERNEL_OPS:
            if op != "axpy" and FPContext(fobj).is_exact:
                # the exact fp64 context evaluates dot/matvec in BLAS
                # order, which is intentionally outside the rounded-fold
                # contract the kernel references model
                continue
            if pool_floats is None:
                pool_floats = [codec.decode_float(p) for p in pool]
            reports.append(_check_kernel(fobj, op, pool_floats,
                                         seed ^ 0x5EED, max_first))
        else:
            raise ValueError(f"unknown conformance op {op!r}")
    return reports


def run_conformance(formats=None, ops=None, *, tier: int = 1,
                    samples: int | None = None, seed: int = 0xBEEF,
                    max_first: int = 5, progress=None) -> dict:
    """Sweep a format grid and assemble the JSON-ready report payload."""
    formats = tuple(formats) if formats else conformance_formats(tier)
    ops = tuple(ops) if ops else ALL_OPS
    samples = samples if samples is not None else DEFAULT_SAMPLES[tier]
    reports: list[OpReport] = []
    for fmt in formats:
        reports.extend(sweep_format(
            fmt, ops, exhaustive_nbits=EXHAUSTIVE_NBITS[tier],
            unary_exhaustive_nbits=UNARY_EXHAUSTIVE_NBITS[tier],
            samples=samples, seed=seed, max_first=max_first,
            progress=progress))
    checked = sum(r.checked for r in reports)
    bad = sum(r.divergences for r in reports)
    return {
        "schema": "repro-conformance/1",
        "tier": tier,
        "seed": seed,
        "samples": samples,
        "ops": list(ops),
        "formats": [get_format(f).name for f in formats],
        "reports": [asdict(r) for r in reports],
        "summary": {
            "formats": len(formats),
            "checked": checked,
            "divergences": bad,
            "status": "pass" if bad == 0 else "fail",
        },
    }


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.oracle.conformance",
        description="Differential conformance sweep against the exact "
                    "arithmetic oracle.")
    parser.add_argument("--tier", type=int, choices=(1, 2), default=1,
                        help="1: fast PR-gating sweep; 2: nightly "
                             "exhaustive sweep (default: 1)")
    parser.add_argument("--formats", default=None,
                        help="comma-separated format names "
                             "(default: the tier's grid)")
    parser.add_argument("--ops", default=None,
                        help=f"comma-separated ops from {ALL_OPS}")
    parser.add_argument("--samples", type=int, default=None,
                        help="stratified pool size for wide formats")
    parser.add_argument("--seed", type=int, default=0xBEEF)
    parser.add_argument("--max-first", type=int, default=5,
                        help="minimized repro cases kept per (format, op)")
    parser.add_argument("--out", default="conformance.json",
                        help="report filename (written under results/)")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    formats = args.formats.split(",") if args.formats else None
    ops = tuple(args.ops.split(",")) if args.ops else None
    if ops:
        unknown = [o for o in ops if o not in ALL_OPS]
        if unknown:
            parser.error(f"unknown ops {unknown}; choose from {ALL_OPS}")

    def progress(fmt_name, op):
        if not args.quiet:
            print(f"  sweeping {fmt_name:12s} {op}", file=sys.stderr)

    t0 = time.perf_counter()
    payload = run_conformance(formats, ops, tier=args.tier,
                              samples=args.samples, seed=args.seed,
                              max_first=args.max_first, progress=progress)
    payload["elapsed"] = time.perf_counter() - t0
    path = write_json(args.out, payload)

    summary = payload["summary"]
    if not args.quiet:
        width = max(len(r["format"]) for r in payload["reports"])
        for r in payload["reports"]:
            flag = "ok  " if r["divergences"] == 0 else "FAIL"
            print(f"{flag} {r['format']:{width}s} {r['op']:7s} "
                  f"{r['mode']:11s} {r['checked']:>9d} checked "
                  f"{r['divergences']:>6d} divergent "
                  f"({r['elapsed']:.2f}s)")
    print(f"conformance: {summary['checked']} checks across "
          f"{summary['formats']} formats -> "
          f"{summary['divergences']} divergences "
          f"[{summary['status'].upper()}]; report: {path}")
    if summary["divergences"]:
        for r in payload["reports"]:
            for case in r["first"]:
                print(f"  repro {r['format']} {case}", file=sys.stderr)
    return 0 if summary["divergences"] == 0 else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
