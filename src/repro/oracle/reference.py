"""Correctly-rounded reference semantics for every ``repro.arith`` op.

:func:`oracle_scalar` builds, for one format, a function computing what a
scalar ``add / sub / mul / div / sqrt`` **must** return under the
library's emulation contract: evaluate the operation exactly (unbounded
rational arithmetic), then round once, correctly, into the format.
Special values follow the family's algebra — posit NaR absorbs
everything and division by zero is NaR; IEEE propagates ±inf/NaN with
the usual rules (``inf - inf``, ``0 * inf``, ``0/0`` and ``inf/inf`` are
NaN, ``x/0`` is signed infinity).

The kernel references (:func:`ref_dot`, :func:`ref_axpy`,
:func:`ref_matvec`, :func:`ref_sum`) compose those correctly rounded
scalars in exactly the rounding schedule :class:`repro.arith.FPContext`
promises — one rounding per multiply, one per partial-sum add, in
``sequential`` or ``pairwise`` order — so any bitwise difference from
the production kernels is a genuine conformance violation, not schedule
ambiguity.

:func:`exact_fma` and :func:`ref_fma` additionally provide the
single-rounding fused multiply-add the production context does *not*
offer; quire-style accumulations are validated against them.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from ..formats.base import NumberFormat
from .codecs import IEEEOracleCodec, OracleCodec, oracle_codec
from .takum_codec import TakumLogOracleCodec, TakumOracleCodec
from .rational import Rat, radd, rat, rdiv, rfma, rmul, rsub, to_fraction

__all__ = [
    "SCALAR_OPS", "oracle_scalar", "ref_round", "format_contract",
    "ref_sum", "ref_dot", "ref_axpy", "ref_matvec",
    "exact_fma", "ref_fma", "same_value",
]

#: the scalar operations the conformance engine sweeps
SCALAR_OPS = ("add", "sub", "mul", "div", "sqrt")

#: the float64 carrier the production library computes through
_FP64_CODEC = IEEEOracleCodec(53, 11)


def format_contract(fmt: NumberFormat | str) -> str:
    """Which rounding contract the float64 emulation can honour for *fmt*.

    ``"exact"``: double rounding through the float64 carrier is provably
    innocuous (worst-case significand precision ``p`` satisfies
    ``2p + 2 <= 53``), so the production paths must match the strict
    correctly rounded oracle bit-for-bit.

    ``"carrier"``: the format carries too many significand bits
    (posit32es2 holds up to 28 near 1.0) for that guarantee; the
    production contract is *exact result -> correctly rounded float64 ->
    format*, and conformance must model the intermediate rounding.
    """
    codec = oracle_codec(fmt)
    if isinstance(codec, TakumLogOracleCodec):
        # log-takum values are transcendental: the format's carrier
        # values *are* correctly rounded doubles, so the contract is
        # carrier by construction at every width
        return "carrier"
    if isinstance(codec, IEEEOracleCodec):
        p = codec.precision
    elif isinstance(codec, TakumOracleCodec):
        # takum: sign + direction + 3 regime bits leave nbits - 5 - r
        # mantissa bits, r >= 0, so nbits - 4 significand bits at best
        p = max(1, codec.nbits - 4)
    else:
        # posit: sign + >=2 regime bits + es leave nbits - 2 - es
        # significand bits (hidden bit included) at best
        p = max(1, codec.nbits - 2 - codec.es)
    return "exact" if 2 * p + 2 <= 53 else "carrier"


def same_value(a: float, b: float) -> bool:
    """Bitwise-equivalent for conformance purposes.

    NaN matches NaN (posit NaR and IEEE NaN payloads are all carried as
    float64 NaN); ±0 compare equal (the emulation layer does not define
    zero signs); infinities must match in sign.
    """
    return a == b or (math.isnan(a) and math.isnan(b))


def _cached_float(codec: OracleCodec, pattern: int) -> float:
    # conformance sweeps land on the same result patterns millions of
    # times; Fraction-based decode is the dominant cost without this
    cache = codec.__dict__.setdefault("_float_cache", {})
    v = cache.get(pattern)
    if v is None:
        v = cache[pattern] = codec.decode_float(pattern)
    return v


def _nearest(codec: OracleCodec, q: Rat, carrier: bool = False) -> float:
    if carrier:
        c = _nearest(_FP64_CODEC, q)
        if not math.isfinite(c):
            return c if isinstance(codec, IEEEOracleCodec) else math.nan
        q = rat(c)
    return _cached_float(codec, codec.nearest_pattern(q))


def _sqrt(codec: OracleCodec, q: Rat, carrier: bool = False) -> float:
    if q[0] < 0:
        return math.nan
    if q[0] == 0:
        return 0.0
    if carrier:
        c = _sqrt(_FP64_CODEC, q)
        return _nearest(codec, rat(c))
    return _cached_float(codec, codec._signed_pattern(codec.sqrt_mag(q),
                                                      False))


def _sign(x: float) -> float:
    return math.copysign(1.0, x)


def oracle_scalar(fmt: NumberFormat | str, contract: str = "exact"
                  ) -> Callable[[str, float, float], float]:
    """Reference evaluator ``oracle(op, a, b=0.0) -> float`` for *fmt*.

    Operands are float64 carrier values (finite values must be
    representable in the format — conformance sweeps feed decoded bit
    patterns, which guarantees that).  The returned float is the exact
    operation result correctly rounded into the format.

    *contract* is ``"exact"`` (strict correct rounding) or ``"carrier"``
    (model the intermediate float64 rounding of the emulation layer —
    required for formats where :func:`format_contract` says double
    rounding is not innocuous).
    """
    codec = oracle_codec(fmt)
    if contract not in ("exact", "carrier"):
        raise ValueError(f"unknown contract {contract!r}")
    carrier = contract == "carrier"

    if codec.has_nar:
        def oracle(op: str, a: float, b: float = 0.0) -> float:
            # NaR absorbs; infinities cannot be posit/takum values, but
            # the codec maps any non-finite carrier to NaR; mirror that.
            if not math.isfinite(a) or (op != "sqrt"
                                        and not math.isfinite(b)):
                return math.nan
            if op == "sqrt":
                if a < 0.0:
                    return math.nan
                return _sqrt(codec, rat(a), carrier)
            if op == "div" and b == 0.0:
                return math.nan
            return _nearest(codec, _EXACT[op](rat(a), rat(b)), carrier)
        return oracle

    def oracle(op: str, a: float, b: float = 0.0) -> float:  # IEEE
        if math.isnan(a) or (op != "sqrt" and math.isnan(b)):
            return math.nan
        if op == "sqrt":
            if a == 0.0:
                return a                      # sqrt(±0) = ±0
            if a < 0.0:
                return math.nan
            if math.isinf(a):
                return math.inf
            return _sqrt(codec, rat(a), carrier)
        if op in ("add", "sub"):
            eb = -b if op == "sub" else b
            if math.isinf(a) or math.isinf(eb):
                if math.isinf(a) and math.isinf(eb) and _sign(a) != _sign(eb):
                    return math.nan           # inf - inf
                return a if math.isinf(a) else eb
        elif op == "mul":
            if math.isinf(a) or math.isinf(b):
                if a == 0.0 or b == 0.0:
                    return math.nan           # 0 * inf
                return _sign(a) * _sign(b) * math.inf
        elif op == "div":
            if math.isinf(a):
                if math.isinf(b):
                    return math.nan           # inf / inf
                return _sign(a) * _sign(b) * math.inf
            if math.isinf(b):
                return 0.0                    # finite / inf
            if b == 0.0:
                if a == 0.0:
                    return math.nan           # 0 / 0
                return _sign(a) * _sign(b) * math.inf
        else:
            raise ValueError(f"unknown scalar op {op!r}; "
                             f"choose from {SCALAR_OPS}")
        return _nearest(codec, _EXACT[op](rat(a), rat(b)), carrier)
    return oracle


_EXACT = {"add": radd, "sub": rsub, "mul": rmul, "div": rdiv}


def ref_round(fmt: NumberFormat | str, x: float) -> float:
    """Reference for ``fmt.round``: correctly rounded quantization of *x*."""
    codec = oracle_codec(fmt)
    if not math.isfinite(x):
        if codec.has_nar or math.isnan(x):
            return math.nan
        return x                              # IEEE keeps ±inf
    return _nearest(codec, rat(x))


# ---------------------------------------------------------------------------
# Kernel references: the FPContext rounding schedule over oracle scalars
# ---------------------------------------------------------------------------

def _fold(terms: list[float], oracle, order: str) -> float:
    """Mirror :func:`repro.arith.summation.rounded_sum_last_axis` exactly."""
    if not terms:
        return 0.0
    if order == "sequential":
        acc = terms[0]
        for t in terms[1:]:
            acc = oracle("add", acc, t)
        return acc
    if order != "pairwise":
        raise ValueError(f"unknown summation order {order!r}")
    while len(terms) > 1:
        m = len(terms) // 2
        folded = [oracle("add", terms[i], terms[m + i]) for i in range(m)]
        if len(terms) & 1:
            folded.append(terms[-1])
        terms = folded
    return terms[0]


def ref_sum(fmt: NumberFormat | str, xs: Sequence[float],
            order: str = "pairwise", contract: str = "exact") -> float:
    """Reference for ``FPContext.sum``: every partial sum rounded."""
    return _fold([float(x) for x in xs], oracle_scalar(fmt, contract),
                 order)


def ref_dot(fmt: NumberFormat | str, xs: Sequence[float],
            ys: Sequence[float], order: str = "pairwise",
            contract: str = "exact") -> float:
    """Reference for ``FPContext.dot``: round each product, fold rounded."""
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    oracle = oracle_scalar(fmt, contract)
    products = [oracle("mul", float(x), float(y)) for x, y in zip(xs, ys)]
    return _fold(products, oracle, order)


def ref_axpy(fmt: NumberFormat | str, alpha: float, xs: Sequence[float],
             ys: Sequence[float], contract: str = "exact") -> list[float]:
    """Reference for ``FPContext.axpy``: product and sum each rounded."""
    oracle = oracle_scalar(fmt, contract)
    return [oracle("add", float(y), oracle("mul", float(alpha), float(x)))
            for x, y in zip(xs, ys)]


def ref_matvec(fmt: NumberFormat | str, A: Sequence[Sequence[float]],
               x: Sequence[float], order: str = "pairwise",
               contract: str = "exact") -> list[float]:
    """Reference for ``FPContext.matvec``: one rounded dot per row."""
    return [ref_dot(fmt, row, x, order=order, contract=contract)
            for row in A]


# ---------------------------------------------------------------------------
# Fused multiply-add (single rounding; quire / exact-accumulation oracle)
# ---------------------------------------------------------------------------

def exact_fma(a: float, b: float, c: float):
    """The exact rational value of ``a*b + c`` as a Fraction."""
    return to_fraction(rfma(a, b, c))


def ref_fma(fmt: NumberFormat | str, a: float, b: float, c: float) -> float:
    """Correctly rounded fused multiply-add: one rounding of ``a*b + c``."""
    codec = oracle_codec(fmt)
    if not (math.isfinite(a) and math.isfinite(b) and math.isfinite(c)):
        # defer to the scalar special algebra: round(a*b) then add would
        # differ only in finite cases, never for specials
        oracle = oracle_scalar(fmt)
        return oracle("add", oracle("mul", a, b), c)
    return _nearest(codec, rfma(a, b, c))
