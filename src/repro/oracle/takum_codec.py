"""Reference codecs for takum and takum-log, from the draft standard.

Takum ("tapered accuracy kudos to minimal unum") is the 2024 posit
successor: a sign bit, a *direction* bit ``D``, a 3-bit regime ``R``, a
characteristic field of ``r`` bits and a mantissa of ``p = n - 5 - r``
bits, giving a fixed dynamic range (characteristic ``c`` in
``[-255, 254]``) regardless of width.  The **linear** variant represents
``(-1)^S (1 + m) 2^c``; the **logarithmic** variant reads the same
fields as a base-``sqrt(e)`` exponent ``l = (1 - 2S)(c + m)`` and
represents ``(-1)^S e^(l/2)``.

Like the posit codec next door, everything here is derived from the
format *specification* in unbounded arithmetic and shares no code with
the production paths (:mod:`repro.formats.takum`), so the differential
sweeps compare two independent derivations:

* :class:`TakumOracleCodec` — exact rationals throughout.  Rounding is
  extended-pattern-space RNE exactly as for posits: the cut-off between
  two adjacent ``n``-bit patterns is the value of the ``(n+1)``-bit
  pattern between them, which is an arithmetic midpoint wherever
  mantissa bits exist and a geometric one in the tapered extremes where
  the characteristic is truncated.  Ties go to the even pattern.
* :class:`TakumLogOracleCodec` — values are transcendental
  (``e^(l/2)`` with dyadic ``l``), so every comparison of a rational
  operand against a representable value or rounding boundary runs
  through adaptive-precision ``Decimal`` enclosures of the exponential,
  tightened until the interval excludes the operand.  The loop
  terminates for every input that is not *exactly* a representable
  value: by Lindemann-Weierstrass ``e^x`` is irrational for rational
  ``x != 0``, so a rational operand can only coincide with the grid at
  ``l = 0`` (value 1), which is special-cased.  Decoded float64 values
  are the correctly rounded images of the exact exponentials, certified
  by the same enclosures.

Saturation mirrors posit semantics: ``0 < |x| <= minpos`` rounds to
±minpos (never to zero), ``|x| >= maxpos`` to ±maxpos (never to NaR),
and negation is two's complement on the full pattern.
"""

from __future__ import annotations

import decimal
from decimal import Decimal
from fractions import Fraction
from functools import lru_cache

from ..errors import OracleError, OracleUnsupportedFormat
from .codecs import OracleCodec, _bisect_sqrt
from .rational import Rat, rcmp, rmul, to_fraction

__all__ = ["TakumOracleCodec", "TakumLogOracleCodec", "takum_oracle_codec"]


def _fields(mag: int, nbits: int) -> tuple[int, int, int]:
    """``(c, M, p)`` of an ``nbits``-wide magnitude pattern ``mag >= 1``.

    The magnitude is the low ``nbits - 1`` bits of a non-negative
    pattern: direction bit, 3 regime bits, then ``min(r, nbits - 5)``
    characteristic bits (zero-padded on the right when the width cannot
    hold all ``r``) and ``p = nbits - 5 - r`` mantissa bits (none when
    the characteristic is truncated).
    """
    d = (mag >> (nbits - 2)) & 1
    rfield = (mag >> (nbits - 5)) & 7
    r = rfield if d else 7 - rfield
    avail = nbits - 5
    cb = r if r < avail else avail
    cfield = ((mag >> (avail - cb)) & ((1 << cb) - 1)) << (r - cb)
    c = ((1 << r) - 1 + cfield) if d else (1 - (1 << (r + 1)) + cfield)
    p = avail - cb
    return c, mag & ((1 << p) - 1), p


def _linear_value(mag: int, nbits: int) -> Rat:
    """Exact ``(1 + M/2**p) * 2**c`` of a linear-takum magnitude."""
    c, m, p = _fields(mag, nbits)
    num, scale = (1 << p) + m, c - p
    return (num << scale, 1) if scale >= 0 else (num, 1 << -scale)


def _half_ell(mag: int, nbits: int) -> tuple[int, int]:
    """``l/2`` of a magnitude as a dyadic ``(num, log2_den)``, canonical.

    ``l/2 = (c + M/2**p) / 2 = (c * 2**p + M) / 2**(p+1)``; trailing
    zero bits are stripped so equal exponents share one cache entry.
    """
    c, m, p = _fields(mag, nbits)
    num, log2_den = (c << p) + m, p + 1
    while num and not (num & 1) and log2_den:
        num >>= 1
        log2_den -= 1
    return num, log2_den


# -- adaptive-precision enclosures of e**(num / 2**log2_den) ----------------

#: Decimal working precisions: start small (the grids are coarse), double
#: until the enclosure decides.  The cap is never reached for takum
#: operands — it would take an operand agreeing with a transcendental
#: boundary to thousands of digits.
_PREC_START, _PREC_CAP = 40, 40960


@lru_cache(maxsize=None)
def _exp_enclosure(num: int, log2_den: int,
                   prec: int) -> tuple[Fraction, Fraction]:
    """A rigorous ``[lo, hi]`` containing ``e**(num / 2**log2_den)``.

    ``Decimal.exp`` at precision ``prec`` is correctly rounded, so the
    result is within one ulp of the true value; a symmetric margin of
    ``|y| * 10**(4 - prec)`` covers that generously while still
    shrinking geometrically as ``prec`` doubles.
    """
    with decimal.localcontext() as ctx:
        ctx.prec = prec + 8
        y = (Decimal(num) / Decimal(1 << log2_den)).exp()
        margin = y.copy_abs() * Decimal(10) ** (4 - prec)
        return Fraction(y - margin), Fraction(y + margin)


def _cmp_exp(q: Rat, num: int, log2_den: int) -> int:
    """Sign of ``q - e**(num / 2**log2_den)`` for rational ``q``.

    Returns 0 only in the one rationally-decidable case ``num == 0``;
    otherwise escalates the enclosure until it excludes ``q``.
    """
    if num == 0:
        return rcmp(q, (1, 1))
    qf = to_fraction(q)
    prec = _PREC_START
    while prec <= _PREC_CAP:
        lo, hi = _exp_enclosure(num, log2_den, prec)
        if qf < lo:
            return -1
        if qf > hi:
            return 1
        prec *= 2
    raise OracleError(                            # pragma: no cover
        f"exp comparison of {q} vs e**({num}/2**{log2_den}) undecided "
        f"at {_PREC_CAP} digits")


@lru_cache(maxsize=None)
def _cr_exp(num: int, log2_den: int) -> float:
    """The correctly rounded float64 image of ``e**(num / 2**log2_den)``."""
    if num == 0:
        return 1.0
    prec = _PREC_START
    while prec <= _PREC_CAP:
        lo, hi = _exp_enclosure(num, log2_den, prec)
        flo, fhi = float(lo), float(hi)
        if flo == fhi:                # enclosure rounds to a single double
            return flo
        prec *= 2
    raise OracleError(                            # pragma: no cover
        f"e**({num}/2**{log2_den}) not certified at {_PREC_CAP} digits")


class _TakumCodecBase(OracleCodec):
    """Pattern-space layout shared by both takum variants."""

    #: both variants use posit-style NaR/two's-complement semantics
    has_nar = True

    def __init__(self, nbits: int):
        if not (6 <= nbits <= 64):
            raise OracleUnsupportedFormat(
                f"takum({nbits}) is not a valid configuration "
                f"(need 6 <= nbits <= 64)")
        self.nbits = nbits
        self.npat = 1 << nbits
        self.nar_pattern = 1 << (nbits - 1)
        self.max_mag = self.nar_pattern - 1
        self.one_mag = 1 << (nbits - 2)           # D=1, R=0: c = 0, m = 0

    def finite_value(self, pattern: int) -> Rat | None:
        pattern &= self.npat - 1
        if pattern == self.nar_pattern:
            return None
        if pattern > self.nar_pattern:
            num, den = self.decode_mag(self.npat - pattern)
            return (-num, den)
        return self.decode_mag(pattern)

    def decode_float(self, pattern: int) -> float:
        q = self.finite_value(pattern)
        if q is None:
            return float("nan")
        return float(to_fraction(q))

    def _signed_pattern(self, mag: int, negative: bool) -> int:
        return (self.npat - mag) & (self.npat - 1) if negative else mag


class TakumOracleCodec(_TakumCodecBase):
    """Reference codec for linear takum(nbits)."""

    def __init__(self, nbits: int):
        super().__init__(nbits)
        self.maxpos: Rat = self.decode_mag(self.max_mag)
        self.minpos: Rat = self.decode_mag(1)
        #: |c| never exceeds 255: every in-range power of two is a probe
        self.max_scale = 254

    def decode_mag(self, mag: int) -> Rat:
        if mag == 0:
            return (0, 1)
        return _linear_value(mag, self.nbits)

    def _boundary(self, mag: int) -> Rat:
        """The rounding cut-off between ``mag`` and ``mag + 1``: the
        exact value of the ``(nbits+1)``-bit pattern between them."""
        return _linear_value(2 * mag + 1, self.nbits + 1)

    def nearest_mag(self, q: Rat) -> int:
        if rcmp(q, self.minpos) <= 0:
            return 1
        if rcmp(q, self.maxpos) >= 0:
            return self.max_mag
        lo, hi = 1, self.max_mag                  # v(lo) <= q < v(hi)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if rcmp(self.decode_mag(mid), q) <= 0:
                lo = mid
            else:
                hi = mid
        d = rcmp(q, self._boundary(lo))
        if d > 0:
            return hi
        if d < 0:
            return lo
        return lo if lo % 2 == 0 else hi          # tie: even pattern

    def sqrt_mag(self, q: Rat) -> int:
        # sqrt(q) <= minpos  <=>  q <= minpos**2  (mirrored for maxpos)
        if rcmp(q, rmul(self.minpos, self.minpos)) <= 0:
            return 1
        if rcmp(q, rmul(self.maxpos, self.maxpos)) >= 0:
            return self.max_mag
        lo = _bisect_sqrt(self, q)
        v_lo = self.decode_mag(lo)
        if rcmp(rmul(v_lo, v_lo), q) == 0:
            return lo
        b = self._boundary(lo)
        d = rcmp(q, rmul(b, b))                   # sqrt(q) vs b, squared
        if d > 0:
            return lo + 1
        if d < 0:
            return lo
        return lo if lo % 2 == 0 else lo + 1      # root hits the cut-off

    # docstring inherited
    nearest_mag.__doc__ = OracleCodec.nearest_mag.__doc__
    sqrt_mag.__doc__ = OracleCodec.sqrt_mag.__doc__


class TakumLogOracleCodec(_TakumCodecBase):
    """Reference codec for takum-log(nbits)."""

    def __init__(self, nbits: int):
        super().__init__(nbits)
        #: |l/2| < 128, so |log2(value)| < 128 * log2(e) ~ 184.66; 183
        #: keeps every power-of-two probe strictly inside (minpos, maxpos)
        self.max_scale = 183

    def decode_mag(self, mag: int) -> Rat:
        """The float64 image of ``e**(l/2)``, as an exact rational.

        The true value is transcendental; the format's *carrier* values
        (what ``from_bits`` returns and arithmetic consumes) are its
        correctly rounded doubles, certified by the enclosure loop.
        """
        if mag == 0:
            return (0, 1)
        return float(self._image(mag)).as_integer_ratio()

    def _image(self, mag: int) -> float:
        return _cr_exp(*_half_ell(mag, self.nbits))

    def _cmp_value(self, q: Rat, mag: int) -> int:
        """Sign of ``q - e**(l(mag)/2)`` (the *true* grid value)."""
        return _cmp_exp(q, *_half_ell(mag, self.nbits))

    def _cmp_boundary(self, q: Rat, mag: int, doubled: bool = False) -> int:
        """``q`` vs the cut-off between ``mag`` and ``mag + 1`` (or its
        square, for square-root decisions).  Never an exact tie: the
        boundary exponent is a nonzero dyadic, so the value is
        transcendental."""
        num, log2_den = _half_ell(2 * mag + 1, self.nbits + 1)
        if doubled:
            if log2_den:
                log2_den -= 1
            else:
                num <<= 1
        return _cmp_exp(q, num, log2_den)

    def nearest_mag(self, q: Rat) -> int:
        if self._cmp_value(q, 1) <= 0:            # q <= minpos
            return 1
        if self._cmp_value(q, self.max_mag) >= 0:
            return self.max_mag
        lo, hi = 1, self.max_mag                  # v(lo) <= q < v(hi)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self._cmp_value(q, mid) >= 0:
                lo = mid
            else:
                hi = mid
        return hi if self._cmp_boundary(q, lo) > 0 else lo

    def sqrt_mag(self, q: Rat) -> int:
        # sqrt(q) vs e**x  <=>  q vs e**(2x): reuse the enclosures with
        # the exponent doubled, so the root itself is never approximated
        def cmp_sq(mag: int) -> int:
            num, log2_den = _half_ell(mag, self.nbits)
            if log2_den:
                log2_den -= 1
            else:
                num <<= 1
            return _cmp_exp(q, num, log2_den)

        if cmp_sq(1) <= 0:                        # sqrt(q) <= minpos
            return 1
        if cmp_sq(self.max_mag) >= 0:
            return self.max_mag
        lo, hi = 1, self.max_mag
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if cmp_sq(mid) >= 0:
                lo = mid
            else:
                hi = mid
        return hi if self._cmp_boundary(q, lo, doubled=True) > 0 else lo

    nearest_mag.__doc__ = OracleCodec.nearest_mag.__doc__
    sqrt_mag.__doc__ = OracleCodec.sqrt_mag.__doc__


def takum_oracle_codec(nbits: int, log: bool = False) -> _TakumCodecBase:
    """The reference codec for takum(nbits), linear or logarithmic."""
    return TakumLogOracleCodec(nbits) if log else TakumOracleCodec(nbits)
