"""Exact-arithmetic oracle and differential conformance harness.

The production library emulates low-precision formats through a float64
carrier plus per-operation rounding; this package independently
recomputes what every operation *must* return — exact rational
arithmetic followed by one correctly rounded conversion — and sweeps the
two against each other.  It is the reproduction's stand-in for the GMP
ground truth the paper used to validate its C++ posit library.

Layers
------
:mod:`~repro.oracle.rational`
    Unnormalized exact rationals over unbounded Python integers.
:mod:`~repro.oracle.codecs`
    Reference bit-level codecs: exact decode and correctly rounded
    encode for posit (extended-pattern-space RNE, geometric ties in the
    tapered regions, saturation) and IEEE (value-nearest RNE with
    subnormals and overflow-to-infinity).
:mod:`~repro.oracle.takum_codec`
    Reference codecs for the takum zoo: exact rationals for linear
    takum, adaptive-precision Decimal enclosures for logarithmic takum
    (whose values ``±e^(l/2)`` are transcendental).
:mod:`~repro.oracle.reference`
    Correctly rounded scalar ops with each family's special-value
    algebra, plus dot/axpy/matvec references that mirror the
    :class:`~repro.arith.FPContext` rounding schedule, and a
    single-rounding fused multiply-add.
:mod:`~repro.oracle.conformance`
    The differential sweep engine and ``python -m
    repro.oracle.conformance`` CLI (exhaustive for narrow formats,
    boundary-biased stratified sampling for wide ones; JSON reports
    with minimized divergence repro cases).
"""

from .codecs import (IEEEOracleCodec, OracleCodec, PositOracleCodec,
                     TABLE_MAX_NBITS, oracle_codec)
from .takum_codec import TakumLogOracleCodec, TakumOracleCodec
from .rational import (Rat, rat, rdot, rfma, rsum, to_fraction)
from .reference import (SCALAR_OPS, exact_fma, format_contract,
                        oracle_scalar, ref_axpy, ref_dot, ref_fma,
                        ref_matvec, ref_round, ref_sum, same_value)

_CONFORMANCE_NAMES = ("ALL_OPS", "OpReport", "conformance_formats",
                      "sweep_format", "run_conformance",
                      "boundary_biased_patterns")


def __getattr__(name):
    # lazy so that ``python -m repro.oracle.conformance`` does not trip
    # runpy's found-in-sys.modules warning via this package import
    if name in _CONFORMANCE_NAMES:
        from . import conformance
        return getattr(conformance, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    # rational layer
    "Rat", "rat", "to_fraction", "rsum", "rdot", "rfma",
    # codecs
    "OracleCodec", "PositOracleCodec", "IEEEOracleCodec",
    "TakumOracleCodec", "TakumLogOracleCodec",
    "oracle_codec", "TABLE_MAX_NBITS",
    # reference semantics
    "SCALAR_OPS", "oracle_scalar", "ref_round", "ref_sum", "ref_dot",
    "ref_axpy", "ref_matvec", "exact_fma", "ref_fma", "same_value",
    "format_contract",
    # conformance engine
    "ALL_OPS", "OpReport", "conformance_formats", "sweep_format",
    "run_conformance", "boundary_biased_patterns",
]
