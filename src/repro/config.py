"""Run-scale configuration for experiments and benchmarks.

The paper's experiments run 19 matrices through CG / Cholesky / iterative
refinement in four arithmetic formats.  Emulating per-operation rounding in
pure Python is orders of magnitude slower than the authors' C++ library, so
the harness supports several scales selected by the ``REPRO_SCALE``
environment variable (or explicitly through :class:`RunScale`):

``smoke``
    Matrix dimension capped at 24 with tiny iteration budgets.  Golden-file
    regression tests use this scale: it is fast enough to re-run inside the
    tier-1 suite while still exercising every solver/format cell.
``small``
    Matrix dimension capped at 96, iteration budgets tightened.  The whole
    experiment suite regenerates in a couple of minutes.  This is the
    default for ``pytest benchmarks/``.
``medium``
    Dimension capped at 256 — the paper's smaller matrices (lund_b,
    bcsstk01/02/22, lund_a, nos1) run at their native size.
``full``
    Native sizes from Table I (up to n = 1138).  Slow in pure Python but
    faithful.

The *shape* of every reproduced result (which format wins, where the
crossovers fall) is stable across scales; EXPERIMENTS.md records the scale
used for the committed numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["RunScale", "SCALES", "current_scale", "scale_from_env",
           "jobs_from_env"]


@dataclass(frozen=True)
class RunScale:
    """Caps applied to experiment workloads.

    Attributes
    ----------
    name:
        Scale identifier (``small`` / ``medium`` / ``full``).
    max_dimension:
        Synthetic matrices are generated with ``min(paper_n, max_dimension)``
        unknowns.
    cg_max_iterations:
        Iteration budget for conjugate gradient runs.
    ir_max_iterations:
        Refinement-step budget; the paper reports ``1000+`` when exceeded,
        so ``full`` uses exactly 1000.
    nnz_cap:
        Upper bound on requested non-zeros (scaled with dimension).
    """

    name: str
    max_dimension: int
    cg_max_iterations: int
    ir_max_iterations: int
    nnz_cap: int

    def cap_dimension(self, n: int) -> int:
        """Return the dimension to actually generate for a paper size *n*."""
        return min(int(n), self.max_dimension)

    def cap_nnz(self, nnz: int, n: int) -> int:
        """Scale a paper nnz target to the capped dimension."""
        capped_n = self.cap_dimension(n)
        if capped_n >= n:
            return min(int(nnz), self.nnz_cap)
        # keep the same fill *fraction* when the matrix shrinks, but never
        # drop below ~4 entries per row (a near-diagonal twin would make
        # the factorization experiments trivially easy)
        fill = nnz / float(n * n)
        scaled = int(round(fill * capped_n * capped_n))
        return max(4 * capped_n, min(scaled, self.nnz_cap))


SCALES: dict[str, RunScale] = {
    "smoke": RunScale("smoke", max_dimension=24, cg_max_iterations=150,
                      ir_max_iterations=60, nnz_cap=4_000),
    "small": RunScale("small", max_dimension=96, cg_max_iterations=1200,
                      ir_max_iterations=400, nnz_cap=40_000),
    "medium": RunScale("medium", max_dimension=256, cg_max_iterations=3000,
                       ir_max_iterations=1000, nnz_cap=80_000),
    "full": RunScale("full", max_dimension=1200, cg_max_iterations=6000,
                     ir_max_iterations=1000, nnz_cap=200_000),
}


def scale_from_env(default: str = "small") -> RunScale:
    """Resolve the run scale from ``REPRO_SCALE`` (falling back to *default*)."""
    name = os.environ.get("REPRO_SCALE", default).strip().lower()
    try:
        return SCALES[name]
    except KeyError:
        valid = ", ".join(sorted(SCALES))
        raise ValueError(
            f"REPRO_SCALE={name!r} is not a valid scale (choose from {valid})"
        ) from None


def current_scale() -> RunScale:
    """The scale in effect for this process (reads the environment)."""
    return scale_from_env()


def jobs_from_env(default: int = 1) -> int:
    """Worker-process count for the cell engine, from ``REPRO_JOBS``.

    ``auto`` (or ``0``) resolves to the CPUs actually available to this
    process (respecting cgroup/affinity limits); absent or empty falls
    back to *default* — serial, the bit-for-bit reference path.
    """
    raw = os.environ.get("REPRO_JOBS", "").strip().lower()
    if not raw:
        return max(1, int(default))
    if raw in ("auto", "0"):
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # pragma: no cover - non-Linux
            return max(1, os.cpu_count() or 1)
    try:
        jobs = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_JOBS={raw!r} is not a job count (use an integer or "
            f"'auto')") from None
    if jobs < 1:
        raise ValueError(f"REPRO_JOBS={jobs} must be >= 1 (or 'auto')")
    return jobs
